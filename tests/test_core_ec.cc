/**
 * @file
 * Protocol tests for the EC runtime: update protocol, incarnation
 * numbers, small/large twinning, compiler-instrumented trapping,
 * diff-history migration, read-only locks, rebinding, non-contiguous
 * bindings.
 */

#include <gtest/gtest.h>

#include "core/cluster.hh"
#include "core/shared_array.hh"

namespace dsm {
namespace {

ClusterConfig
ecConfig(const std::string &name, int nprocs = 4,
         std::size_t page_size = 1024)
{
    ClusterConfig cc;
    cc.nprocs = nprocs;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = page_size;
    cc.runtime = RuntimeConfig::parse(name);
    // Per-node scripted protocol test: roles key off rt.self(), so the
    // scenario only makes sense with one app thread per node (SMP
    // coverage lives in the worker-parametrized app/conformance/smp
    // suites). Pin T=1 so a DSM_THREADS sweep cannot redefine it.
    cc.threadsPerNode = 1;
    return cc;
}

class EcConfigTest : public ::testing::TestWithParam<std::string>
{};

/** Writer updates bound data under the lock; reader acquires and must
 *  see the latest version (update protocol). */
TEST_P(EcConfigTest, UpdateProtocolDeliversBoundData)
{
    Cluster cluster(ecConfig(GetParam(), 2));
    cluster.run([](Runtime &rt) {
        auto arr = SharedArray<int>::alloc(rt, 64);
        rt.bindLock(1, {arr.wholeRange()});
        rt.barrier(0);
        if (rt.self() == 0) {
            rt.acquire(1, AccessMode::Write);
            for (int i = 0; i < 64; ++i)
                arr.set(i, i * 3);
            rt.release(1);
        }
        rt.barrier(1);
        if (rt.self() == 1) {
            rt.acquire(1, AccessMode::Read);
            for (int i = 0; i < 64; ++i)
                ASSERT_EQ(arr.get(i), i * 3);
            rt.release(1);
        }
        rt.barrier(2);
    });
}

/** Incremental transfers: a reader that saw version k receives only
 *  the changes made after k. */
TEST_P(EcConfigTest, IncrementalTransfers)
{
    Cluster cluster(ecConfig(GetParam(), 2));
    cluster.run([](Runtime &rt) {
        auto arr = SharedArray<int>::alloc(rt, 32);
        rt.bindLock(1, {arr.wholeRange()});
        rt.barrier(0);
        for (int round = 1; round <= 3; ++round) {
            if (rt.self() == 0) {
                rt.acquire(1, AccessMode::Write);
                arr.set(round, round * 100);
                rt.release(1);
            }
            rt.barrier(round);
            if (rt.self() == 1) {
                rt.acquire(1, AccessMode::Read);
                for (int k = 1; k <= round; ++k)
                    ASSERT_EQ(arr.get(k), k * 100);
                rt.release(1);
            }
            rt.barrier(100 + round);
        }
    });
}

/** Data moves only with its own lock: an unrelated lock's acquire must
 *  not make other data consistent. */
TEST_P(EcConfigTest, OnlyBoundDataMovesWithLock)
{
    Cluster cluster(ecConfig(GetParam(), 2));
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 8);
        auto b = SharedArray<int>::alloc(rt, 8);
        rt.bindLock(1, {a.wholeRange()});
        rt.bindLock(2, {b.wholeRange()});
        rt.barrier(0);
        if (rt.self() == 0) {
            rt.acquire(1, AccessMode::Write);
            a.set(0, 42);
            rt.release(1);
            rt.acquire(2, AccessMode::Write);
            b.set(0, 43);
            rt.release(2);
        }
        rt.barrier(1);
        if (rt.self() == 1) {
            rt.acquire(2, AccessMode::Read);
            ASSERT_EQ(b.get(0), 43); // bound to lock 2: current
            ASSERT_EQ(a.get(0), 0);  // not bound to lock 2: stale
            rt.release(2);
        }
        rt.barrier(2);
    });
}

/** Non-contiguous binding (3D-FFT requirement): one lock over two
 *  separate ranges. */
TEST_P(EcConfigTest, NonContiguousBinding)
{
    Cluster cluster(ecConfig(GetParam(), 2));
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 256);
        rt.bindLock(1, {a.range(0, 8), a.range(200, 8)});
        rt.barrier(0);
        if (rt.self() == 0) {
            rt.acquire(1, AccessMode::Write);
            a.set(2, 7);
            a.set(204, 9);
            rt.release(1);
        }
        rt.barrier(1);
        if (rt.self() == 1) {
            rt.acquire(1, AccessMode::Read);
            ASSERT_EQ(a.get(2), 7);
            ASSERT_EQ(a.get(204), 9);
            ASSERT_EQ(a.get(100), 0); // between the ranges: unbound
            rt.release(1);
        }
        rt.barrier(2);
    });
}

/** Rebinding conservatively transfers the newly bound data. */
TEST_P(EcConfigTest, RebindTransfersFullNewBinding)
{
    Cluster cluster(ecConfig(GetParam(), 2));
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 128);
        rt.bindLock(1, {a.range(0, 16)});
        rt.barrier(0);
        if (rt.self() == 0) {
            // Write the future binding's data under the OLD binding's
            // epoch (plain writes, then rebind while holding).
            rt.acquire(1, AccessMode::Write);
            for (int i = 64; i < 80; ++i)
                a.set(i, i);
            rt.rebindLock(1, {a.range(64, 16)});
            for (int i = 64; i < 68; ++i)
                a.set(i, i * 2);
            rt.release(1);
        }
        rt.barrier(1);
        if (rt.self() == 1) {
            rt.acquire(1, AccessMode::Write);
            for (int i = 64; i < 68; ++i)
                ASSERT_EQ(a.get(i), i * 2);
            for (int i = 68; i < 80; ++i)
                ASSERT_EQ(a.get(i), i);
            rt.release(1);
        }
        rt.barrier(2);
    });
}

/** Migratory pattern: the lock (and its data/diff history) hops
 *  around the ring; every node increments every counter once. */
TEST_P(EcConfigTest, MigratoryRing)
{
    Cluster cluster(ecConfig(GetParam(), 4));
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 16);
        rt.bindLock(1, {a.wholeRange()});
        rt.barrier(0);
        for (int round = 0; round < 4; ++round) {
            if (round % rt.nprocs() == rt.self()) {
                rt.acquire(1, AccessMode::Write);
                for (int i = 0; i < 16; ++i)
                    a.set(i, a.get(i) + 1);
                rt.release(1);
            }
            rt.barrier(1 + round);
        }
        if (rt.self() == 0) {
            rt.acquire(1, AccessMode::Read);
            for (int i = 0; i < 16; ++i)
                ASSERT_EQ(a.get(i), 4);
            rt.release(1);
        }
        rt.barrier(99);
    });
}

/** Large objects (bigger than a page) go through copy-on-write
 *  twinning; sparse writes must still be collected correctly. */
TEST_P(EcConfigTest, LargeObjectSparseWrites)
{
    Cluster cluster(ecConfig(GetParam(), 2, 512));
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 1024); // 4 KB: 8 pages
        rt.bindLock(1, {a.wholeRange()});
        rt.barrier(0);
        if (rt.self() == 0) {
            rt.acquire(1, AccessMode::Write);
            a.set(0, 1);
            a.set(500, 2);
            a.set(1023, 3);
            rt.release(1);
        }
        rt.barrier(1);
        if (rt.self() == 1) {
            rt.acquire(1, AccessMode::Read);
            ASSERT_EQ(a.get(0), 1);
            ASSERT_EQ(a.get(500), 2);
            ASSERT_EQ(a.get(1023), 3);
            ASSERT_EQ(a.get(100), 0);
            rt.release(1);
        }
        rt.barrier(2);
    });
}

/** Ownership migration carries the diff history: A writes, B writes,
 *  C must see both (its grant comes from B only). */
TEST_P(EcConfigTest, HistoryMigratesWithOwnership)
{
    Cluster cluster(ecConfig(GetParam(), 3));
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 8);
        rt.bindLock(1, {a.wholeRange()});
        rt.barrier(0);
        if (rt.self() == 0) {
            rt.acquire(1, AccessMode::Write);
            a.set(0, 10);
            rt.release(1);
        }
        rt.barrier(1);
        if (rt.self() == 1) {
            rt.acquire(1, AccessMode::Write);
            a.set(1, 20);
            rt.release(1);
        }
        rt.barrier(2);
        if (rt.self() == 2) {
            rt.acquire(1, AccessMode::Read);
            ASSERT_EQ(a.get(0), 10);
            ASSERT_EQ(a.get(1), 20);
            rt.release(1);
        }
        rt.barrier(3);
    });
}

/** Write trapping must catch single-byte and unaligned stores. */
TEST_P(EcConfigTest, SubWordStores)
{
    Cluster cluster(ecConfig(GetParam(), 2));
    cluster.run([](Runtime &rt) {
        GlobalAddr base = rt.sharedAlloc(64, 8, 4, "bytes");
        rt.bindLock(1, {{base, 64}});
        rt.barrier(0);
        if (rt.self() == 0) {
            rt.acquire(1, AccessMode::Write);
            rt.write<std::uint8_t>(base + 13, 0x5a);
            rt.write<std::uint16_t>(base + 30, 0xbeef);
            rt.release(1);
        }
        rt.barrier(1);
        if (rt.self() == 1) {
            rt.acquire(1, AccessMode::Read);
            ASSERT_EQ(rt.read<std::uint8_t>(base + 13), 0x5a);
            ASSERT_EQ(rt.read<std::uint16_t>(base + 30), 0xbeef);
            rt.release(1);
        }
        rt.barrier(2);
    });
}

INSTANTIATE_TEST_SUITE_P(Configs, EcConfigTest,
                         ::testing::Values("EC-ci", "EC-time",
                                           "EC-diff"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return n;
                         });

TEST(EcRuntimeMisc, CiDiffCombinationRejected)
{
    RuntimeConfig config{Model::EC, TrapMethod::CompilerInstrumentation,
                         CollectMethod::Diffing};
    EXPECT_DEATH({ config.validate(); }, "prohibitive");
}

TEST(EcRuntimeMisc, StatsReflectMechanisms)
{
    // EC-ci counts dirty stores; EC-time scans timestamps; EC-diff
    // creates diffs.
    auto run = [](const std::string &name) {
        Cluster cluster(ecConfig(name, 2));
        return cluster.run([](Runtime &rt) {
            auto arr = SharedArray<int>::alloc(rt, 64);
            rt.bindLock(1, {arr.wholeRange()});
            rt.barrier(0);
            if (rt.self() == 0) {
                rt.acquire(1, AccessMode::Write);
                for (int i = 0; i < 64; ++i)
                    arr.set(i, i);
                rt.release(1);
            }
            rt.barrier(1);
            if (rt.self() == 1) {
                rt.acquire(1, AccessMode::Read);
                rt.release(1);
            }
            rt.barrier(2);
        });
    };
    RunResult ci = run("EC-ci");
    EXPECT_GT(ci.total.dirtyStores, 0u);
    EXPECT_EQ(ci.total.twinsCreated, 0u);

    RunResult time = run("EC-time");
    EXPECT_GT(time.total.twinsCreated, 0u);
    EXPECT_GT(time.total.tsRunsSent, 0u);

    RunResult diff = run("EC-diff");
    EXPECT_GT(diff.total.diffsCreated, 0u);
    EXPECT_GT(diff.total.diffsApplied, 0u);
    EXPECT_GT(diff.total.updatesSent, 0u);
}

} // namespace
} // namespace dsm
