/**
 * @file
 * Tests for the LRC interval record log: dense-append semantics,
 * reference stability across growth (the seed's vector-backed log
 * dangled recordsAfter() results on reallocation), and barrier-time
 * pruning.
 */

#include <gtest/gtest.h>

#include "core/interval_log.hh"

namespace dsm {
namespace {

IntervalRec
makeRec(NodeId proc, std::uint32_t idx, int nprocs,
        std::vector<PageId> pages = {1})
{
    IntervalRec rec;
    rec.proc = proc;
    rec.idx = idx;
    rec.vt = VectorTime(nprocs);
    rec.vt[proc] = idx;
    rec.pages = std::move(pages);
    return rec;
}

TEST(IntervalLog, AppendAndLookup)
{
    IntervalLog log(2);
    EXPECT_EQ(log.totalRecords(), 0u);
    EXPECT_EQ(log.lastIdxOf(0), 0u);
    EXPECT_EQ(log.find(0, 1), nullptr);

    log.add(makeRec(0, 1, 2, {7}));
    log.add(makeRec(0, 2, 2, {8}));
    log.add(makeRec(1, 1, 2, {9}));

    EXPECT_EQ(log.totalRecords(), 3u);
    EXPECT_EQ(log.lastIdxOf(0), 2u);
    EXPECT_EQ(log.lastIdxOf(1), 1u);
    ASSERT_NE(log.find(0, 2), nullptr);
    EXPECT_EQ(log.find(0, 2)->pages[0], 8u);
    EXPECT_EQ(log.find(0, 3), nullptr);
}

TEST(IntervalLog, DuplicateAddReturnsStoredRecord)
{
    IntervalLog log(1);
    const IntervalRec &first = log.add(makeRec(0, 1, 1, {42}));
    const IntervalRec &again = log.add(makeRec(0, 1, 1, {99}));
    // The original record wins; the duplicate is dropped.
    EXPECT_EQ(&first, &again);
    EXPECT_EQ(again.pages[0], 42u);
}

/** Regression for the seed dangling-pointer hazard: pointers handed
 *  out by recordsAfter() must survive arbitrarily many later adds
 *  (std::vector inner storage invalidated them on reallocation). */
TEST(IntervalLog, RecordPointersSurviveGrowth)
{
    IntervalLog log(1);
    log.add(makeRec(0, 1, 1, {1111}));
    auto early = log.recordsAfter(VectorTime(1));
    ASSERT_EQ(early.size(), 1u);
    const IntervalRec *pinned = early[0];

    for (std::uint32_t idx = 2; idx <= 2000; ++idx)
        log.add(makeRec(0, idx, 1));

    // The pinned record is still the same object with intact contents.
    EXPECT_EQ(pinned, log.find(0, 1));
    EXPECT_EQ(pinned->idx, 1u);
    ASSERT_EQ(pinned->pages.size(), 1u);
    EXPECT_EQ(pinned->pages[0], 1111u);
}

TEST(IntervalLog, RecordsAfterRespectsSinceAndUpTo)
{
    IntervalLog log(2);
    for (std::uint32_t idx = 1; idx <= 5; ++idx)
        log.add(makeRec(0, idx, 2));
    log.add(makeRec(1, 1, 2));

    VectorTime since(2);
    since[0] = 2;
    auto recs = log.recordsAfter(since);
    ASSERT_EQ(recs.size(), 4u); // proc 0: 3,4,5; proc 1: 1
    EXPECT_EQ(recs[0]->idx, 3u);

    VectorTime up_to(2);
    up_to[0] = 4;
    recs = log.recordsAfter(since, &up_to);
    ASSERT_EQ(recs.size(), 2u); // proc 0: 3,4; proc 1: nothing (cap 0)
    EXPECT_EQ(recs.back()->idx, 4u);
}

TEST(IntervalLog, PruneThroughDropsAppliedPrefix)
{
    IntervalLog log(2);
    for (std::uint32_t idx = 1; idx <= 6; ++idx)
        log.add(makeRec(0, idx, 2));
    for (std::uint32_t idx = 1; idx <= 3; ++idx)
        log.add(makeRec(1, idx, 2));

    VectorTime gc(2);
    gc[0] = 4;
    gc[1] = 3;
    EXPECT_EQ(log.pruneThrough(gc), 7u);
    EXPECT_EQ(log.totalRecords(), 2u);
    EXPECT_EQ(log.baseOf(0), 4u);
    EXPECT_EQ(log.baseOf(1), 3u);
    EXPECT_EQ(log.find(0, 4), nullptr); // pruned
    ASSERT_NE(log.find(0, 5), nullptr); // retained
    EXPECT_EQ(log.lastIdxOf(0), 6u);

    // Appending continues densely after the prune.
    log.add(makeRec(0, 7, 2));
    EXPECT_EQ(log.lastIdxOf(0), 7u);

    // recordsAfter from a vector at/above the GC floor still works.
    auto recs = log.recordsAfter(gc);
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0]->idx, 5u);

    // Pruning is idempotent.
    EXPECT_EQ(log.pruneThrough(gc), 0u);
}

TEST(IntervalLog, SurvivorsKeepStableAddressesAcrossPrune)
{
    IntervalLog log(1);
    for (std::uint32_t idx = 1; idx <= 100; ++idx)
        log.add(makeRec(0, idx, 1));
    const IntervalRec *survivor = log.find(0, 60);
    VectorTime gc(1);
    gc[0] = 50;
    log.pruneThrough(gc);
    EXPECT_EQ(log.find(0, 60), survivor);
    EXPECT_EQ(survivor->idx, 60u);
}

TEST(IntervalLogDeath, GapAndResendAreProtocolErrors)
{
    IntervalLog log(1);
    log.add(makeRec(0, 1, 1));
    EXPECT_DEATH(log.add(makeRec(0, 3, 1)), "gap");

    VectorTime gc(1);
    gc[0] = 1;
    log.pruneThrough(gc);
    EXPECT_DEATH(log.add(makeRec(0, 1, 1)), "garbage collection");
}

} // namespace
} // namespace dsm
