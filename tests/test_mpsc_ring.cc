/**
 * @file
 * Stress tests for the lock-free MPSC inbox (net/mpsc_ring.hh) and
 * its integration into Network: per-producer FIFO under many
 * concurrent producers, full-ring back-pressure with a tiny ring,
 * shutdown racing active producers, and the in-order-per-pair
 * delivery assertion at the Network level for both inbox policies.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/mpsc_ring.hh"
#include "net/network.hh"

namespace dsm {
namespace {

Message
makeMsg(NodeId src, std::uint64_t payload_token)
{
    Message m;
    m.src = src;
    m.dst = 0;
    m.type = MsgType::LockRequest;
    m.replyToken = payload_token;
    return m;
}

TEST(MpscRing, ManyProducersPerProducerFifo)
{
    constexpr int kProducers = 8;
    constexpr int kPerProducer = 20000;
    MpscRing ring(256);

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&ring, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const std::uint64_t ticket =
                    ring.push(makeMsg(p, static_cast<std::uint64_t>(i)));
                ASSERT_NE(ticket, 0u);
            }
        });
    }

    std::vector<std::uint64_t> next(kProducers, 0);
    std::uint64_t last_ticket = 0;
    Message out;
    for (int i = 0; i < kProducers * kPerProducer; ++i) {
        ASSERT_TRUE(ring.pop(out));
        // Ticket order is the delivery order.
        ASSERT_GT(out.pairSeq, last_ticket);
        last_ticket = out.pairSeq;
        // And each producer's messages arrive in its send order.
        ASSERT_EQ(out.replyToken, next[out.src]) << "producer "
                                                 << out.src;
        next[out.src]++;
    }
    for (auto &t : producers)
        t.join();
    for (int p = 0; p < kProducers; ++p)
        EXPECT_EQ(next[p], static_cast<std::uint64_t>(kPerProducer));
}

TEST(MpscRing, TinyRingBackpressureLosesNothing)
{
    // Capacity 2: producers must block on the full ring constantly;
    // every message still arrives, in per-producer order.
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 5000;
    MpscRing ring(2);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&ring, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ring.push(makeMsg(p, static_cast<std::uint64_t>(i)));
        });
    }
    std::vector<std::uint64_t> next(kProducers, 0);
    Message out;
    for (int i = 0; i < kProducers * kPerProducer; ++i) {
        ASSERT_TRUE(ring.pop(out));
        ASSERT_EQ(out.replyToken, next[out.src]);
        next[out.src]++;
    }
    for (auto &t : producers)
        t.join();
}

TEST(MpscRing, AdaptiveSpinLosesNothingAcrossParkAndBurst)
{
    // The adaptive consumer budget (DSM_BLOCKING_DEQ) halves on every
    // futex park and doubles on hot pops: drive it through both
    // extremes — long idle gaps that collapse the budget to zero and
    // dense bursts that restore it — and require exact delivery
    // either way. Tiny capacity keeps the producer blocking on the
    // full ring at the same time.
    constexpr int kBursts = 40;
    constexpr int kPerBurst = 64;
    MpscRing ring(4);
    ring.setAdaptiveSpin(true);

    std::thread producer([&] {
        for (int b = 0; b < kBursts; ++b) {
            for (int i = 0; i < kPerBurst; ++i) {
                ring.push(makeMsg(
                    0, static_cast<std::uint64_t>(b * kPerBurst + i)));
            }
            // Idle gap: the consumer drains, spins out, and parks.
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });
    Message out;
    for (int i = 0; i < kBursts * kPerBurst; ++i) {
        ASSERT_TRUE(ring.pop(out));
        ASSERT_EQ(out.replyToken, static_cast<std::uint64_t>(i));
    }
    producer.join();
}

TEST(MpscRing, ShutdownRace)
{
    // Producers blast while the consumer drains a little and shuts
    // down mid-stream: no hang, no crash, and everything the consumer
    // saw is a valid prefix per producer.
    for (int round = 0; round < 20; ++round) {
        MpscRing ring(64);
        constexpr int kProducers = 4;
        std::atomic<bool> stop{false};
        std::vector<std::thread> producers;
        for (int p = 0; p < kProducers; ++p) {
            producers.emplace_back([&, p] {
                for (std::uint64_t i = 0; !stop.load(); ++i) {
                    if (ring.push(makeMsg(p, i)) == 0)
                        break; // shut down while we were blocked
                }
            });
        }

        std::vector<std::uint64_t> next(kProducers, 0);
        Message out;
        for (int i = 0; i < 500 + round * 37; ++i) {
            ASSERT_TRUE(ring.pop(out));
            ASSERT_EQ(out.replyToken, next[out.src]);
            next[out.src]++;
        }
        ring.shutdown();
        stop.store(true);
        // Post-shutdown pops drain whatever was published, still in
        // order, and then report exhaustion instead of blocking.
        while (ring.pop(out)) {
            ASSERT_EQ(out.replyToken, next[out.src]);
            next[out.src]++;
        }
        for (auto &t : producers)
            t.join();
    }
}

TEST(MpscRing, ShutdownUnblocksParkedConsumer)
{
    MpscRing ring(8);
    std::thread consumer([&] {
        Message out;
        EXPECT_FALSE(ring.pop(out));
    });
    // Give the consumer time to park before the wake.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ring.shutdown();
    consumer.join();
}

TEST(MpscRing, PeerDownStatusTyped)
{
    MpscRing ring(8);
    Message out;

    // Empty + peer dead: a typed status instead of parking forever.
    ring.setPeerDown(true);
    EXPECT_EQ(ring.popWithStatus(out), RingPop::PeerDown);

    // Messages published before the death still drain first, in order.
    ring.setPeerDown(false);
    ring.push(makeMsg(1, 0));
    ring.push(makeMsg(1, 1));
    ring.setPeerDown(true);
    EXPECT_EQ(ring.popWithStatus(out), RingPop::Ok);
    EXPECT_EQ(out.replyToken, 0u);
    EXPECT_EQ(ring.popWithStatus(out), RingPop::Ok);
    EXPECT_EQ(out.replyToken, 1u);
    EXPECT_EQ(ring.popWithStatus(out), RingPop::PeerDown);

    // Producers are unaffected while the peer is down ("parked
    // outbound traffic"), and plain pop() ignores the flag entirely.
    ring.push(makeMsg(2, 7));
    EXPECT_TRUE(ring.pop(out));
    EXPECT_EQ(out.src, 2);

    // Recovery clears the flag; shutdown then reads as Closed.
    ring.setPeerDown(false);
    ring.shutdown();
    EXPECT_EQ(ring.popWithStatus(out), RingPop::Closed);
}

TEST(MpscRing, PeerDownWakesParkedStatusConsumer)
{
    MpscRing ring(8);
    std::thread consumer([&] {
        Message out;
        EXPECT_EQ(ring.popWithStatus(out), RingPop::PeerDown);
    });
    // Give the consumer time to park before the death flag flips.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ring.setPeerDown(true);
    consumer.join();
}

TEST(NetworkPeerDown, RecvStatusSeesDeathAndRecovery)
{
    CostModel cm;
    Network net(2, cm, nullptr, InboxPolicy::LockFreeRing);
    NodeStats stats;
    net.send(makeMsg(1, 5), stats);
    net.markNodeDown(0);

    Message out;
    // Pre-death traffic drains before the status shows.
    EXPECT_EQ(net.recvStatus(0, out), RingPop::Ok);
    EXPECT_EQ(out.replyToken, 5u);
    EXPECT_EQ(net.recvStatus(0, out), RingPop::PeerDown);

    // Sends to the dead node buffer; recovery drains them.
    net.send(makeMsg(1, 6), stats);
    net.clearNodeDown(0);
    EXPECT_EQ(net.recvStatus(0, out), RingPop::Ok);
    EXPECT_EQ(out.replyToken, 6u);

    net.shutdown();
    EXPECT_EQ(net.recvStatus(0, out), RingPop::Closed);
}

class NetworkPolicyTest : public ::testing::TestWithParam<InboxPolicy>
{};

TEST_P(NetworkPolicyTest, InOrderPerPairUnderContention)
{
    // 7 sender nodes hammer node 0 through the Network (which asserts
    // pairSeq monotonicity per pair on every delivery); the payload
    // token re-checks per-pair FIFO end to end.
    CostModel cm;
    Network net(8, cm, nullptr, GetParam());
    constexpr int kPerSender = 15000;

    std::vector<std::thread> senders;
    for (int s = 1; s < 8; ++s) {
        senders.emplace_back([&, s] {
            NodeStats stats;
            for (int i = 0; i < kPerSender; ++i) {
                Message m = makeMsg(s, static_cast<std::uint64_t>(i));
                m.vtSendNs = static_cast<std::uint64_t>(i);
                net.send(std::move(m), stats);
            }
        });
    }
    std::vector<std::uint64_t> next(8, 0);
    Message out;
    for (int i = 0; i < 7 * kPerSender; ++i) {
        ASSERT_TRUE(net.recv(0, out));
        ASSERT_EQ(out.replyToken, next[out.src]);
        next[out.src]++;
    }
    for (auto &t : senders)
        t.join();
    net.shutdown();
    EXPECT_FALSE(net.recv(0, out));
}

INSTANTIATE_TEST_SUITE_P(Policies, NetworkPolicyTest,
                         ::testing::Values(InboxPolicy::LockFreeRing,
                                           InboxPolicy::MutexQueue),
                         [](const auto &info) {
                             return info.param ==
                                            InboxPolicy::LockFreeRing
                                        ? std::string("ring")
                                        : std::string("mutex");
                         });

} // namespace
} // namespace dsm
