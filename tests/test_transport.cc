/**
 * @file
 * The tier-1 transport's unit surface: frame-codec round trips under
 * adversarial chunkings (partial reads, short writes, torn length
 * prefixes), oversized/malformed-frame rejection, socket-pair RPC
 * choreography over Unix-domain and TCP streams, retransmit recovery
 * under send-side fault injection, and the regression guards for
 * same-address-space assumptions (frames own value bytes; a socket
 * cluster's final memory is bit-identical to the ring tier's).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <thread>

#include "core/cluster.hh"
#include "core/shared_array.hh"
#include "driver/proc_launcher.hh"
#include "net/endpoint.hh"
#include "net/frame.hh"
#include "net/socket_transport.hh"
#include "net/serde.hh"

using namespace dsm;

namespace {

Message
makeMessage(NodeId src, NodeId dst, MsgType type,
            std::vector<std::byte> payload)
{
    Message m;
    m.src = src;
    m.dst = dst;
    m.type = type;
    m.isReply = type == MsgType::LockGrant;
    m.replyToken = 0xfeedULL + static_cast<std::uint64_t>(dst);
    m.vtSendNs = 123456;
    m.vtArriveNs = 234567;
    m.payload = std::move(payload);
    return m;
}

void
expectSameMessage(const Message &got, const Message &want)
{
    EXPECT_EQ(got.src, want.src);
    EXPECT_EQ(got.dst, want.dst);
    EXPECT_EQ(got.type, want.type);
    EXPECT_EQ(got.isReply, want.isReply);
    EXPECT_EQ(got.replyToken, want.replyToken);
    EXPECT_EQ(got.vtSendNs, want.vtSendNs);
    EXPECT_EQ(got.vtArriveNs, want.vtArriveNs);
    ASSERT_EQ(got.payload.size(), want.payload.size());
    EXPECT_EQ(std::memcmp(got.payload.data(), want.payload.data(),
                          want.payload.size()),
              0);
    // pairSeq never travels: the receiver's ring stamps it at push.
    EXPECT_EQ(got.pairSeq, 0u);
}

} // namespace

// ---------------------------------------------------------------------
// Frame codec: encode/decode round trips.

TEST(FrameCodec, DataFrameSurvivesEveryChunking)
{
    std::vector<std::byte> payload(37);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::byte>(i * 7 + 1);
    const Message msg =
        makeMessage(2, 5, MsgType::DiffRequest, payload);
    const std::vector<std::byte> wire = encodeDataFrame(msg);

    // Split the wire bytes at every possible boundary, including in
    // the middle of the length prefix (the torn-prefix case).
    for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
        FrameDecoder dec;
        Frame frame;
        dec.feed(std::span<const std::byte>(wire.data(), cut));
        if (cut < wire.size())
            EXPECT_FALSE(dec.next(frame)) << "cut at " << cut;
        dec.feed(std::span<const std::byte>(wire.data() + cut,
                                            wire.size() - cut));
        ASSERT_TRUE(dec.next(frame)) << "cut at " << cut;
        EXPECT_EQ(frame.kind, FrameKind::Data);
        expectSameMessage(frame.msg, msg);
        EXPECT_FALSE(dec.next(frame));
        EXPECT_EQ(dec.buffered(), 0u);
        EXPECT_FALSE(dec.poisoned());
    }
}

TEST(FrameCodec, RandomStreamsPropertyRoundTrip)
{
    // Property test: any sequence of frames, fed in any chunking,
    // decodes to the identical sequence. Seeded, so a failure is
    // reproducible.
    std::mt19937_64 rng(20260808);
    for (int round = 0; round < 30; ++round) {
        std::vector<Message> sent;
        std::vector<std::byte> stream;
        const auto append = [&stream](std::vector<std::byte> bytes) {
            stream.insert(stream.end(), bytes.begin(), bytes.end());
        };
        append(encodeHelloFrame(3, 8));
        const int msgs = 1 + static_cast<int>(rng() % 40);
        for (int i = 0; i < msgs; ++i) {
            std::vector<std::byte> payload(rng() % 512);
            for (auto &b : payload)
                b = static_cast<std::byte>(rng());
            const auto type = static_cast<MsgType>(
                1 + rng() % (static_cast<int>(MsgType::NumTypes) - 1));
            sent.push_back(makeMessage(3, 1, type, std::move(payload)));
            append(encodeDataFrame(sent.back()));
        }
        append(encodeGoodbyeFrame(3, 1));
        append(encodeGoodbyeFrame(3, 2));

        FrameDecoder dec;
        std::size_t fed = 0;
        std::vector<Frame> got;
        Frame frame;
        while (fed < stream.size()) {
            const std::size_t n =
                std::min(stream.size() - fed,
                         static_cast<std::size_t>(1 + rng() % 97));
            dec.feed(std::span<const std::byte>(stream.data() + fed, n));
            fed += n;
            while (dec.next(frame))
                got.push_back(frame);
        }
        ASSERT_FALSE(dec.poisoned());
        ASSERT_EQ(got.size(), sent.size() + 3u);
        EXPECT_EQ(got.front().kind, FrameKind::Hello);
        EXPECT_EQ(got.front().node, 3);
        EXPECT_EQ(got.front().nnodes, 8);
        for (std::size_t i = 0; i < sent.size(); ++i) {
            ASSERT_EQ(got[1 + i].kind, FrameKind::Data);
            expectSameMessage(got[1 + i].msg, sent[i]);
        }
        EXPECT_EQ(got[got.size() - 2].round, 1);
        EXPECT_EQ(got.back().kind, FrameKind::Goodbye);
        EXPECT_EQ(got.back().round, 2);
        EXPECT_EQ(dec.buffered(), 0u);
    }
}

TEST(FrameCodec, OversizedLengthPrefixPoisonsWithoutAllocating)
{
    // A corrupt length prefix above the cap must poison the decoder
    // immediately — never be treated as "wait for 4 GiB of body".
    FrameDecoder dec;
    const std::uint32_t huge = kMaxFrameBytes + 1;
    std::byte prefix[4];
    std::memcpy(prefix, &huge, sizeof(huge));
    dec.feed(std::span<const std::byte>(prefix, 4));
    Frame frame;
    EXPECT_FALSE(dec.next(frame));
    EXPECT_TRUE(dec.poisoned());

    // Poison is sticky: a subsequently fed well-formed frame must be
    // refused, because stream framing is already lost.
    const auto good = encodeHelloFrame(0, 2);
    dec.feed(std::span<const std::byte>(good.data(), good.size()));
    EXPECT_FALSE(dec.next(frame));
    EXPECT_TRUE(dec.poisoned());
}

TEST(FrameCodec, MalformedBodiesPoison)
{
    const auto poisonsAfter = [](std::vector<std::byte> wire,
                                 const char *what) {
        FrameDecoder dec;
        dec.feed(std::span<const std::byte>(wire.data(), wire.size()));
        Frame frame;
        EXPECT_FALSE(dec.next(frame)) << what;
        EXPECT_TRUE(dec.poisoned()) << what;
    };

    // Hello with a corrupted magic word.
    auto hello = encodeHelloFrame(1, 4);
    hello[5] ^= std::byte{0xff}; // first magic byte (after the prefix
                                 // and kind)
    poisonsAfter(std::move(hello), "bad magic");

    // Goodbye with an out-of-protocol round.
    auto goodbye = encodeGoodbyeFrame(1, 2);
    goodbye.back() = std::byte{7};
    poisonsAfter(std::move(goodbye), "bad round");

    // Data frame whose type byte is out of range.
    auto data = encodeDataFrame(
        makeMessage(0, 1, MsgType::LockRequest, {}));
    data[4 + 1 + 2 * sizeof(NodeId)] =
        std::byte{0xee}; // the type byte
    poisonsAfter(std::move(data), "bad msg type");

    // Truncated body: length prefix claims fewer bytes than the
    // smallest legal hello body.
    auto short_hello = encodeHelloFrame(1, 4);
    const std::uint32_t lied = 3;
    std::memcpy(short_hello.data(), &lied, sizeof(lied));
    short_hello.resize(4 + lied);
    poisonsAfter(std::move(short_hello), "short body");
}

TEST(FrameCodec, EncodedFrameOwnsItsBytes)
{
    // Same-address-space regression guard: the encoded frame must be
    // a deep copy of the message. If encoding ever captured a pointer
    // into the sender's buffers, clobbering and freeing the original
    // after encode would corrupt the wire bytes.
    std::vector<std::byte> payload(256, std::byte{0xab});
    Message msg = makeMessage(0, 1, MsgType::HomeDiffFlush, payload);
    std::vector<std::byte> wire = encodeDataFrame(msg);
    std::fill(msg.payload.begin(), msg.payload.end(), std::byte{0x00});
    msg.payload = std::vector<std::byte>(); // frees the allocation

    FrameDecoder dec;
    dec.feed(std::span<const std::byte>(wire.data(), wire.size()));
    Frame frame;
    ASSERT_TRUE(dec.next(frame));
    ASSERT_EQ(frame.msg.payload.size(), payload.size());
    EXPECT_EQ(std::memcmp(frame.msg.payload.data(), payload.data(),
                          payload.size()),
              0);
}

// ---------------------------------------------------------------------
// Socket-pair choreography: two SocketTransports in one process — the
// frame path, reader threads and receiver-side bypass are exactly the
// forked layout, minus the fork.

namespace {

struct SocketPairHarness
{
    explicit SocketPairHarness(SocketKind kind,
                               FaultInjector *injector = nullptr)
        : dir(makeRendezvousDir())
    {
        for (int i = 0; i < 2; ++i) {
            transports.push_back(std::make_unique<SocketTransport>(
                i, 2, cm, kind, dir));
            if (injector)
                transports.back()->setFaultInjector(injector);
        }
        std::thread dial([&] { transports[1]->connectPeers(5000); });
        transports[0]->connectPeers(5000);
        dial.join();
        for (int i = 0; i < 2; ++i) {
            eps.push_back(std::make_unique<Endpoint>(
                *transports[i], i, clocks[i], stats[i]));
        }
    }

    ~SocketPairHarness()
    {
        std::thread finish([&] { transports[1]->finishRun(); });
        transports[0]->finishRun();
        finish.join();
        for (auto &ep : eps)
            ep->stop();
        eps.clear();
        transports.clear();
        removeRendezvousDir(dir);
    }

    CostModel cm;
    std::string dir;
    std::vector<std::unique_ptr<SocketTransport>> transports;
    VirtualClock clocks[2];
    NodeStats stats[2];
    std::vector<std::unique_ptr<Endpoint>> eps;
};

void
runRpcSmoke(SocketPairHarness &h, int rounds,
            MsgType request = MsgType::LockRequest,
            MsgType response = MsgType::LockGrant)
{
    h.eps[1]->setHandler([&h, response](Message &msg) {
        WireWriter w;
        WireReader r(msg.payload);
        w.putU32(r.getU32() * 2);
        h.eps[1]->reply(msg.src, response, w.take(), msg.replyToken);
    });
    h.eps[0]->setHandler([](Message &) { FAIL(); });
    h.eps[0]->start();
    h.eps[1]->start();

    for (int i = 0; i < rounds; ++i) {
        WireWriter w;
        w.putU32(static_cast<std::uint32_t>(i));
        Message reply = h.eps[0]->call(1, request, w.take());
        WireReader r(reply.payload);
        ASSERT_EQ(r.getU32(), static_cast<std::uint32_t>(i) * 2)
            << "round " << i;
    }
}

} // namespace

TEST(SocketPair, RpcRoundTripsOverUnixStream)
{
    SocketPairHarness h(SocketKind::Unix);
    runRpcSmoke(h, 500);
    // Every request and reply crossed the transport.
    EXPECT_GE(h.transports[0]->totalMessages(), 500u);
    EXPECT_GE(h.transports[1]->totalMessages(), 500u);
    EXPECT_GE(h.stats[0].messagesReceived, 500u);
}

TEST(SocketPair, RpcRoundTripsOverTcpLoopback)
{
    SocketPairHarness h(SocketKind::Tcp);
    runRpcSmoke(h, 200);
    EXPECT_GE(h.transports[0]->totalMessages(), 200u);
}

TEST(SocketPair, RetransmitRecoversInjectedDrops)
{
    // The PR 6 fault plumbing rides the socket tier unchanged: the
    // send-side injector discards frames before the wire, and the
    // endpoint's deadline/retransmit/dedup choreography recovers
    // every RPC. Drops repeat per attempt until kAttemptImmunity, so
    // delivery is certain.
    FaultInjector injector(0xD15C0, 0.30);
    SocketPairHarness h(SocketKind::Unix, &injector);
    h.eps[0]->setFaultsEnabled(true);
    h.eps[1]->setFaultsEnabled(true);
    // Tight real-time retransmit clock: the virtual-clock deadline
    // charge stays modeled, but the waiting happens in wall time.
    h.eps[0]->setRetransmitTimeouts(1'000'000, 8'000'000);
    h.eps[1]->setRetransmitTimeouts(1'000'000, 8'000'000);
    // Diff RPCs are the droppable shape (requester owns the round
    // trip end to end); lock traffic is chain-routed and immune.
    runRpcSmoke(h, 300, MsgType::DiffRequest, MsgType::DiffReply);
    // With a 30% drop rate some requests or replies were certainly
    // lost and recovered; the deadline-path counter (msgRetransmits,
    // not the modeled-loss `retransmissions`) proves it engaged.
    EXPECT_GE(h.stats[0].msgRetransmits, 1u);
}

TEST(SocketPair, MarkNodeDownSurfacesPeerDownLocally)
{
    // The socket tier owns exactly one inbox; marking *this* node
    // down must surface RingPop::PeerDown to its service loop (the
    // degraded-mode dequeue contract), and clearing it must restore
    // normal timeouts. Remote marks are an in-process-only feature
    // and assert on the socket tier.
    CostModel cm;
    const std::string dir = makeRendezvousDir();
    {
        SocketTransport only(0, 1, cm, SocketKind::Unix, dir);
        Message out;
        EXPECT_EQ(only.recvTimed(0, out, 1'000'000), RingPop::Timeout);
        only.markNodeDown(0);
        // The status-aware dequeue refuses to park on a dead peer.
        EXPECT_EQ(only.recvStatus(0, out), RingPop::PeerDown);
        only.clearNodeDown(0);
        EXPECT_EQ(only.recvTimed(0, out, 1'000'000), RingPop::Timeout);
    }
    removeRendezvousDir(dir);
}

// ---------------------------------------------------------------------
// End-to-end: a forked socket cluster must land bit-identical memory
// to the in-process ring cluster — the conformance anchor in
// miniature, exercised regardless of DSM_TRANSPORT.

namespace {

std::vector<std::byte>
runCounterApp(const std::string &transport)
{
    ClusterConfig cc;
    cc.nprocs = 2;
    cc.runtime = RuntimeConfig::parse("LRC-diff");
    cc.transport = transport;
    Cluster cluster(cc);
    cluster.run([](Runtime &rt) {
        auto arr = SharedArray<int>::alloc(rt, 64);
        rt.barrier(0);
        for (int turn = 0; turn < 2; ++turn) {
            rt.acquire(1, AccessMode::Write);
            arr.set(7, arr.get(7) + 1 + rt.self());
            rt.release(1);
            rt.barrier(1 + turn);
        }
        rt.acquire(1, AccessMode::Read);
        (void)arr.get(7);
        rt.release(1);
        rt.barrier(9);
    });
    const std::byte *mem = cluster.memory(0, 0);
    return std::vector<std::byte>(mem, mem + 64 * sizeof(int));
}

} // namespace

TEST(SocketCluster, ForkedRunMatchesRingBitForBit)
{
    const std::vector<std::byte> ring = runCounterApp("ring");
    const std::vector<std::byte> socket = runCounterApp("socket");
    ASSERT_EQ(ring.size(), socket.size());
    EXPECT_EQ(std::memcmp(ring.data(), socket.data(), ring.size()), 0);
}

TEST(SocketCluster, AppExceptionPropagatesFromChildren)
{
    ClusterConfig cc;
    cc.nprocs = 2;
    cc.runtime = RuntimeConfig::parse("EC-diff");
    cc.transport = "socket";
    Cluster cluster(cc);
    EXPECT_THROW(cluster.run([](Runtime &rt) {
        rt.barrier(0);
        // Symmetric SPMD throw: every rank fails the same way, the
        // launcher collects the dumps and rethrows in the parent.
        throw std::runtime_error("deliberate");
    }),
                 std::runtime_error);
}
