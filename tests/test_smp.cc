/**
 * @file
 * SMP-node tests: the threads-per-node axis opened by the layered
 * concurrency refactor.
 *
 *  - Intra-node lock hand-off: a lock contended only by threads of one
 *    node transfers through the local waiter queue — zero network
 *    messages, counted by intraNodeLockHandoffs.
 *  - Same-node concurrent writers: one twin per (page, interval)
 *    regardless of how many sibling threads store to the page, and no
 *    write is lost.
 *  - T=1 parity: with threadsPerNode == 1 (and the satellite policy
 *    knobs pinned to their legacy values) the deterministic protocol
 *    counters of the barrier-separated apps are bit-identical to the
 *    pre-refactor golden frozen in tests/data/t1_parity_golden.txt.
 *    (Exec times and traffic byte counts are schedule-dependent even
 *    in the seed — the centralized managers serve real arrival order —
 *    so the golden pins exactly the counters that are stable across
 *    seed runs.)
 */

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "core/cluster.hh"
#include "core/shared_array.hh"
#include "driver/experiment.hh"

namespace dsm {
namespace {

// ---------------------------------------------------------------------
// Intra-node hand-off bypasses the network.

TEST(SmpNodes, IntraNodeHandoffZeroMessages)
{
    // One node, four threads hammering one write lock: every acquire
    // is either the local fast path or a hand-off from a sibling;
    // nothing may send a protocol message. (A raw atomic start gate
    // keeps all four threads in the contention window — the run is so
    // short that without it the first thread can finish before its
    // siblings are even scheduled.)
    ClusterConfig cc;
    cc.nprocs = 1;
    cc.threadsPerNode = 4;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = 1024;
    cc.runtime = RuntimeConfig::parse("LRC-diff");
    Cluster cluster(cc);

    constexpr int kIters = 2000;
    std::atomic<int> gate{0};
    RunResult r = cluster.run([&](Runtime &rt) {
        auto a = SharedArray<std::uint64_t>::alloc(rt, 8, 4, "ctr");
        gate.fetch_add(1);
        while (gate.load() < 4)
            std::this_thread::yield();
        for (int i = 0; i < kIters; ++i) {
            rt.acquire(5, AccessMode::Write);
            a.set(0, a.get(0) + 1);
            std::this_thread::yield();
            rt.release(5);
        }
    });

    // messagesSent counts protocol traffic (networkMessages would
    // also see the teardown shutdown self-message).
    EXPECT_EQ(r.total.messagesSent, 0u)
        << "single-node lock traffic must never reach the network";
    EXPECT_GT(r.total.intraNodeLockHandoffs, 0u)
        << "contended sibling acquires must be served by hand-off";
    EXPECT_EQ(r.total.locksAcquired,
              static_cast<std::uint64_t>(4 * kIters));
    const std::uint64_t *v = reinterpret_cast<const std::uint64_t *>(
        cluster.memory(0, 0));
    EXPECT_EQ(*v, static_cast<std::uint64_t>(4 * kIters));
}

TEST(SmpNodes, HandoffShortCircuitsAfterRemoteFetch)
{
    // Two nodes x two threads. Lock 1 is managed by node 1 but used
    // only by node 0's threads: the first acquire crosses the network
    // once; every transfer after that is intra-node. Message traffic
    // must not scale with the iteration count.
    ClusterConfig cc;
    cc.nprocs = 2;
    cc.threadsPerNode = 2;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = 1024;
    cc.runtime = RuntimeConfig::parse("LRC-diff");
    Cluster cluster(cc);

    constexpr int kIters = 100;
    RunResult r = cluster.run([&](Runtime &rt) {
        auto a = SharedArray<std::uint64_t>::alloc(rt, 8, 4, "ctr");
        rt.barrier(0);
        if (rt.self() == 0) {
            for (int i = 0; i < kIters; ++i) {
                rt.acquire(1, AccessMode::Write);
                a.set(1, a.get(1) + 1);
                rt.release(1);
            }
        }
        rt.barrier(1);
    });

    EXPECT_GT(r.total.intraNodeLockHandoffs, 0u);
    // 2 barriers + one manager round trip for the first acquire: far
    // below one message pair per acquire.
    EXPECT_LT(r.networkMessages, static_cast<std::uint64_t>(kIters));
    const std::uint64_t *v = reinterpret_cast<const std::uint64_t *>(
        cluster.memory(0, 8));
    EXPECT_EQ(*v, static_cast<std::uint64_t>(2 * kIters));
}

// ---------------------------------------------------------------------
// Bounded local priority: a remote requester is served within k local
// hand-offs (the sharing-policy fairness bound).

TEST(SmpNodes, BoundedHandoffServesRemoteRequester)
{
    // Node 0's two workers monopolize lock 2 (managed by node 0) in a
    // tight hand-off loop; node 1's worker 0 requests it once the
    // local chain is running. Under pure local-first hand-off the
    // remote request can wait out the entire batch; with
    // lockLocalHandoffBound = 4 the release that would start the 5th
    // consecutive hand-off with the request queued must serve node 1
    // instead. The hammering only stops after the remote was served,
    // so the lock is contended for the whole window.
    constexpr int kBound = 4;
    constexpr int kMaxIters = 500000;
    ClusterConfig cc;
    cc.nprocs = 2;
    cc.threadsPerNode = 2;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = 1024;
    cc.runtime = RuntimeConfig::parse("LRC-diff");
    cc.lockLocalHandoffBound = kBound;
    // Cross-node choreography via captured host atomics (done /
    // queuedAt / servedAt) needs one address space; pin to the
    // in-process transport.
    cc.transport = "ring";
    Cluster cluster(cc);

    std::atomic<std::uint64_t> done{0};   // node 0 releases so far
    std::atomic<std::int64_t> queuedAt{-1};
    std::atomic<std::int64_t> servedAt{-1};
    std::atomic<bool> remoteDone{false};

    RunResult r = cluster.run([&](Runtime &rt) {
        auto a = SharedArray<std::uint64_t>::alloc(rt, 8, 4, "ctr");
        rt.barrier(0);
        if (rt.self() == 0) {
            for (int i = 0; i < kMaxIters && !remoteDone.load(); ++i) {
                rt.acquire(2, AccessMode::Write);
                a.set(0, a.get(0) + 1);
                // Hold the lock until the sibling has provably
                // parked: every release is then a decision point with
                // a local waiter present, so the remote can only be
                // served through the fairness bound — never through
                // an idle-lock drain the host scheduler happens to
                // open up. While holding, record when the remote
                // request lands in the pending queue (the moment the
                // fairness clock starts).
                for (;;) {
                    if (queuedAt.load() < 0 &&
                        rt.lockService().pendingRemoteCount(2) > 0) {
                        queuedAt.store(
                            static_cast<std::int64_t>(done.load()));
                    }
                    if (rt.lockService().localWaiterCount(2) > 0 ||
                        remoteDone.load()) {
                        break;
                    }
                    std::this_thread::yield();
                }
                rt.release(2);
                done.fetch_add(1);
            }
        } else if (rt.threadId() == 0) {
            // Wait until the reacquire loop on node 0 is hot, then
            // request once.
            while (done.load() < 50)
                std::this_thread::yield();
            rt.acquire(2, AccessMode::Write);
            servedAt.store(static_cast<std::int64_t>(done.load()));
            a.set(1, 1);
            rt.release(2);
            remoteDone.store(true);
        }
        rt.barrier(1);
    });

    ASSERT_GE(servedAt.load(), 0)
        << "the remote requester was never served";
    EXPECT_GE(r.total.remoteHandoffsForced, 1u)
        << "the fairness bound must have forced the grant";
    // From the moment the request is queued at node 0 it waits out at
    // most k further local grants; the slack covers the probe lag and
    // the release already in flight. (A request that arrives in the
    // instants between the holder's last probe and its release is
    // served before the probe can see it — an even tighter bound —
    // so the timing claim is checked whenever the probe caught it.)
    if (queuedAt.load() >= 0) {
        EXPECT_LE(servedAt.load() - queuedAt.load(), kBound + 8)
            << "the remote request waited out "
            << servedAt.load() - queuedAt.load() << " local grants";
    }
    // The warm-up monopolization itself: at least 50 uncontested-by-
    // remotes local grants ran back to back before the request came
    // in (on a one-core host these may all be fast-path barges past
    // the parked sibling — still local grants, still the run the
    // bound caps).
    EXPECT_GE(r.total.maxLocalHandoffRun,
              static_cast<std::uint64_t>(kBound));
}

// ---------------------------------------------------------------------
// Same-node concurrent writers share one twin per (page, interval).

TEST(SmpNodes, SiblingWritersShareOneTwin)
{
    // One node, four threads, one page: every thread stores to its own
    // quarter between barriers. Only the first faulting store of each
    // interval may create a twin; with 2 barrier-separated intervals
    // that is at most 2 twins, and every word must survive.
    ClusterConfig cc;
    cc.nprocs = 1;
    cc.threadsPerNode = 4;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = 1024;
    cc.runtime = RuntimeConfig::parse("LRC-diff");
    Cluster cluster(cc);

    constexpr int kWords = 256; // one 1024-byte page of ints
    RunResult r = cluster.run([&](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, kWords, 4, "page");
        const int t = rt.threadId();
        const int lo = t * kWords / 4;
        const int hi = (t + 1) * kWords / 4;
        rt.barrier(0);
        for (int i = lo; i < hi; ++i)
            a.set(i, 1000 + i);
        rt.barrier(1);
        for (int i = lo; i < hi; ++i)
            a.set(i, a.get(i) + 1);
        rt.barrier(2);
    });

    EXPECT_LE(r.total.twinsCreated, 2u)
        << "sibling writers must share the page's twin, not race "
           "to create their own";
    const int *got =
        reinterpret_cast<const int *>(cluster.memory(0, 0));
    for (int i = 0; i < kWords; ++i)
        ASSERT_EQ(got[i], 1001 + i) << "word " << i;
}

// ---------------------------------------------------------------------
// T=1 parity against the pre-refactor golden.

std::map<std::string, std::uint64_t>
loadGolden()
{
    const std::string path =
        std::string(DSM_SOURCE_DIR) + "/tests/data/t1_parity_golden.txt";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing golden file " << path;
    std::map<std::string, std::uint64_t> golden;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto split = line.rfind(' ');
        const auto eq = line.rfind('=');
        golden[line.substr(0, split) + " " +
               line.substr(split + 1, eq - split - 1)] =
            std::stoull(line.substr(eq + 1));
    }
    return golden;
}

TEST(SmpNodes, T1ParityAgainstPreRefactorGolden)
{
    // The refactor must be observationally invisible at the old
    // scenario point: threadsPerNode == 1, legacy GC trigger, legacy
    // (undecayed) home-migration counters. SOR and SOR+ are the
    // barrier-separated apps whose protocol counters are reproducible
    // run to run even in the seed; the golden lists exactly those.
    const auto golden = loadGolden();
    ASSERT_FALSE(golden.empty());

    AppParams params = AppParams::testScale();
    ClusterConfig cc;
    cc.nprocs = 8;
    cc.arenaBytes = 16u << 20;
    cc.pageSize = 4096;
    cc.threadsPerNode = 1;
    cc.adaptiveGcThreshold = false;
    cc.homeDecayWindow = 0;
    // Sharing-policy knobs pinned to their legacy values, so a
    // policy CI leg's environment (DSM_LOCK_FAIRNESS,
    // DSM_HOME_LAST_WRITER, DSM_HOME_DEFER, DSM_HOME_PINGPONG)
    // cannot perturb the golden counters (a last-writer migration
    // changes SOR's home-flush count).
    cc.lockLocalHandoffBound = 0;
    cc.homeMigrateLastWriter = 0;
    cc.homePingPongLimit = 0;
    cc.homeFlushDefer = 0;

    for (const std::string &app : {std::string("SOR"),
                                   std::string("SOR+")}) {
        for (const RuntimeConfig &config : RuntimeConfig::all()) {
            for (int home = 0; home <= 1; ++home) {
                if (home &&
                    !(config.model == Model::LRC &&
                      config.collect == CollectMethod::Diffing)) {
                    continue;
                }
                ClusterConfig run_cc = cc;
                run_cc.homeBasedLrc = home != 0;
                ExperimentResult r =
                    runExperiment(app, config, params, run_cc);
                const std::string key_base =
                    app + " " + config.name() + " home=" +
                    std::to_string(home) + " ";
                int compared = 0;
                for (const auto &[name, value] : r.run.total.items()) {
                    auto it = golden.find(key_base + name);
                    if (it == golden.end())
                        continue; // schedule-dependent counter
                    // Homeless LRC's invalidation/miss pair wobbles
                    // by one when a piggybacked write notice lands
                    // before vs after the app's next access — a host
                    // scheduling artifact (shows up only under an
                    // oversubscribed ctest -j), not a protocol
                    // divergence. Everything else must match exactly.
                    const bool scheduleCoupled =
                        name == "pagesInvalidated" ||
                        name == "accessMisses";
                    if (scheduleCoupled) {
                        const auto lo = it->second > 2
                            ? it->second - 2 : 0;
                        EXPECT_GE(value, lo)
                            << key_base << name
                            << " diverged from the pre-refactor golden";
                        EXPECT_LE(value, it->second + 2)
                            << key_base << name
                            << " diverged from the pre-refactor golden";
                    } else {
                        EXPECT_EQ(value, it->second)
                            << key_base << name
                            << " diverged from the pre-refactor golden";
                    }
                    ++compared;
                }
                EXPECT_GT(compared, 10) << key_base;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Equal-worker topologies agree on final memory for every protocol.

TEST(SmpNodes, TopologiesAgreeOnFinalState)
{
    // 8x1, 4x2, 2x4 and 1x8 run the same 8-worker program; node 0's
    // collected state must be bit-identical across topologies for each
    // protocol (the collector is worker 0 in every one).
    constexpr int kWords = 512;
    auto kernel = [](Runtime &rt) {
        const bool ec =
            rt.clusterConfig().runtime.model == Model::EC;
        const int np = rt.nworkers();
        const int self = rt.worker();
        auto a = SharedArray<std::int64_t>::alloc(rt, kWords, 4, "grid");
        if (ec) {
            for (int p = 0; p < np; ++p) {
                const int lo = p * kWords / np;
                const int hi = (p + 1) * kWords / np;
                rt.bindLock(static_cast<LockId>(10 + p),
                            {a.range(lo, hi - lo)});
            }
        }
        rt.barrier(0);
        const int lo = self * kWords / np;
        const int hi = (self + 1) * kWords / np;
        for (int step = 0; step < 4; ++step) {
            if (ec)
                rt.acquire(static_cast<LockId>(10 + self),
                           AccessMode::Write);
            for (int i = lo; i < hi; ++i)
                a.set(i, (step + 1) * 1000 + i * 7);
            if (ec)
                rt.release(static_cast<LockId>(10 + self));
            rt.barrier(1 + step);
        }
        if (rt.worker() == 0) {
            for (int p = 0; p < np && ec; ++p) {
                rt.acquire(static_cast<LockId>(10 + p),
                           AccessMode::Read);
                rt.release(static_cast<LockId>(10 + p));
            }
            for (int i = 0; i < kWords; ++i)
                a.get(i);
        }
        rt.barrier(99);
    };

    for (const char *config : {"EC-diff", "LRC-diff", "LRC-time"}) {
        for (int home = 0; home <= 1; ++home) {
            if (home && std::string(config) != "LRC-diff")
                continue;
            std::vector<std::byte> reference;
            for (auto [np, t] : {std::pair{8, 1}, std::pair{4, 2},
                                 std::pair{2, 4}, std::pair{1, 8}}) {
                ClusterConfig cc;
                cc.nprocs = np;
                cc.threadsPerNode = t;
                cc.arenaBytes = 1u << 20;
                cc.pageSize = 1024;
                cc.runtime = RuntimeConfig::parse(config);
                cc.homeBasedLrc = home != 0;
                cc.homeMigrateThreshold = 4;
                Cluster cluster(cc);
                cluster.run(kernel);
                std::vector<std::byte> state(kWords * 8);
                std::memcpy(state.data(), cluster.memory(0, 0),
                            state.size());
                if (reference.empty()) {
                    reference = state;
                } else {
                    ASSERT_EQ(state, reference)
                        << config << " home=" << home << " at " << np
                        << "x" << t;
                }
            }
        }
    }
}

} // namespace
} // namespace dsm
