/**
 * @file
 * Long-run tests for the fast-path memory pipeline: barrier-time
 * garbage collection of interval records and stored diffs (memory
 * stays bounded across many epochs), and the batched diff-fetch
 * protocol (fewer request messages for the same final memory image).
 */

#include <gtest/gtest.h>

#include "core/cluster.hh"
#include "core/shared_array.hh"

namespace dsm {
namespace {

constexpr int kPagesTouched = 4;
constexpr int kIntsPerPage = 256; // 1024-byte pages
constexpr int kEpochs = 40;

ClusterConfig
gcConfig(const std::string &name, int nprocs)
{
    ClusterConfig cc;
    cc.nprocs = nprocs;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = 1024;
    cc.runtime = RuntimeConfig::parse(name);
    // Per-node scripted protocol test: roles key off rt.self(), so the
    // scenario only makes sense with one app thread per node (SMP
    // coverage lives in the worker-parametrized app/conformance/smp
    // suites). Pin T=1 so a DSM_THREADS sweep cannot redefine it.
    cc.threadsPerNode = 1;
    return cc;
}

/**
 * Alternating producer/consumer over several pages, one interval per
 * node per epoch: the interval log grows steadily unless GC runs.
 */
void
epochWorkload(Runtime &rt)
{
    auto a = SharedArray<int>::alloc(rt, kPagesTouched * kIntsPerPage);
    rt.barrier(0);
    for (int round = 1; round <= kEpochs; ++round) {
        const int writer = round % rt.nprocs();
        if (rt.self() == writer) {
            for (int p = 0; p < kPagesTouched; ++p)
                a.set(p * kIntsPerPage + (round % kIntsPerPage),
                      round * 100 + p);
        }
        rt.barrier(2 * round - 1);
        for (int p = 0; p < kPagesTouched; ++p) {
            ASSERT_EQ(a.get(p * kIntsPerPage + (round % kIntsPerPage)),
                      round * 100 + p);
        }
        rt.barrier(2 * round);
    }
}

/** White-box log sizes read straight off the live runtimes. Only
 *  meaningful when the workers ran in this address space, so every
 *  test using these helpers pins cc.transport = "ring" — under a
 *  process-per-node transport the launcher-side runtimes stay
 *  pristine and the bounds would pass (or fail) vacuously. */
std::size_t
totalRecords(Cluster &cluster)
{
    std::size_t total = 0;
    for (int n = 0; n < cluster.nprocs(); ++n) {
        total += dynamic_cast<const LrcRuntime &>(cluster.runtime(n))
                     .intervalRecordCount();
    }
    return total;
}

std::size_t
totalStoredDiffs(Cluster &cluster)
{
    std::size_t total = 0;
    for (int n = 0; n < cluster.nprocs(); ++n) {
        total += dynamic_cast<const LrcRuntime &>(cluster.runtime(n))
                     .diffStoreSize();
    }
    return total;
}

TEST(LrcGc, IntervalAndDiffLogsStayBoundedAcrossEpochs)
{
    ClusterConfig cc = gcConfig("LRC-diff", 2);
    cc.gcAtBarriers = true;
    cc.gcIntervalThreshold = 16;
    cc.transport = "ring"; // white-box log inspection below
    Cluster cluster(cc);
    RunResult result = cluster.run(epochWorkload);

    // GC actually fired and reclaimed storage on every node.
    EXPECT_GT(result.total.gcRounds, 0u);
    EXPECT_GT(result.total.gcRecordsReclaimed, 0u);
    EXPECT_GT(result.total.gcDiffsReclaimed, 0u);

    // What remains is bounded by the threshold plus the records of the
    // epochs since the last collection — far below the ~2 records per
    // epoch an unbounded log accumulates.
    EXPECT_LE(totalRecords(cluster),
              2 * (cc.gcIntervalThreshold + 8));
    EXPECT_LT(totalStoredDiffs(cluster),
              2 * kPagesTouched * (cc.gcIntervalThreshold + 8));
}

TEST(LrcGc, AblationLogsGrowWithoutGc)
{
    ClusterConfig cc = gcConfig("LRC-diff", 2);
    cc.gcAtBarriers = false;
    cc.transport = "ring"; // white-box log inspection below
    Cluster cluster(cc);
    RunResult result = cluster.run(epochWorkload);

    EXPECT_EQ(result.total.gcRounds, 0u);
    EXPECT_EQ(result.total.gcRecordsReclaimed, 0u);
    // Every epoch leaves one interval record per node in every log.
    EXPECT_GE(totalRecords(cluster), 2u * kEpochs);
}

TEST(LrcGc, TimestampingRecordsArePrunedToo)
{
    ClusterConfig cc = gcConfig("LRC-time", 2);
    cc.gcAtBarriers = true;
    cc.gcIntervalThreshold = 16;
    cc.transport = "ring"; // white-box log inspection below
    Cluster cluster(cc);
    RunResult result = cluster.run(epochWorkload);

    EXPECT_GT(result.total.gcRounds, 0u);
    EXPECT_GT(result.total.gcRecordsReclaimed, 0u);
    EXPECT_LE(totalRecords(cluster),
              2 * (cc.gcIntervalThreshold + 8));
}

TEST(LrcGc, SingleNodePrunesItsOwnLog)
{
    ClusterConfig cc = gcConfig("LRC-diff", 1);
    cc.gcAtBarriers = true;
    cc.gcIntervalThreshold = 8;
    cc.transport = "ring"; // white-box log inspection below
    Cluster cluster(cc);
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 64);
        rt.barrier(0);
        for (int round = 1; round <= 30; ++round) {
            a.set(round % 64, round);
            rt.barrier(round);
        }
    });
    EXPECT_LE(totalRecords(cluster), cc.gcIntervalThreshold + 2);
}

// ---------------------------------------------------------------------
// Batched diff fetches.

/** One writer dirties several pages; every other node then reads them
 *  all. With batching, the first access miss piggybacks the remaining
 *  invalid pages into the same request pair. */
void
fanOutWorkload(Runtime &rt)
{
    auto a = SharedArray<int>::alloc(rt, kPagesTouched * kIntsPerPage);
    rt.barrier(0);
    for (int round = 1; round <= 6; ++round) {
        if (rt.self() == 0) {
            for (int p = 0; p < kPagesTouched; ++p)
                a.set(p * kIntsPerPage, round * 10 + p);
        }
        rt.barrier(2 * round - 1);
        for (int p = 0; p < kPagesTouched; ++p)
            ASSERT_EQ(a.get(p * kIntsPerPage), round * 10 + p);
        rt.barrier(2 * round);
    }
}

TEST(LrcBatch, BatchingCutsDiffRequestMessages)
{
    ClusterConfig on = gcConfig("LRC-diff", 3);
    on.batchDiffFetch = true;
    Cluster cluster_on(on);
    RunResult with_batch = cluster_on.run(fanOutWorkload);

    ClusterConfig off = gcConfig("LRC-diff", 3);
    off.batchDiffFetch = false;
    Cluster cluster_off(off);
    RunResult without_batch = cluster_off.run(fanOutWorkload);

    // Both configurations converge to the same data (asserted inside
    // the workload); batching must do it with fewer request messages.
    EXPECT_GT(with_batch.total.diffPagesPiggybacked, 0u);
    EXPECT_LT(with_batch.total.diffRequestsSent,
              without_batch.total.diffRequestsSent);
    EXPECT_LT(with_batch.total.messagesSent,
              without_batch.total.messagesSent);
    EXPECT_EQ(without_batch.total.diffPagesPiggybacked, 0u);
}

TEST(LrcBatch, MultiWriterPagesStayCorrectUnderBatching)
{
    ClusterConfig cc = gcConfig("LRC-diff", 2);
    cc.batchDiffFetch = true;
    Cluster cluster(cc);
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 2 * kIntsPerPage);
        rt.barrier(0);
        const int self = rt.self();
        // Concurrent writers on disjoint halves of two pages.
        for (int p = 0; p < 2; ++p) {
            for (int i = 0; i < kIntsPerPage / 2; ++i) {
                a.set(p * kIntsPerPage + self * (kIntsPerPage / 2) + i,
                      self * 10000 + p * 1000 + i);
            }
        }
        rt.barrier(1);
        for (int p = 0; p < 2; ++p) {
            for (int i = 0; i < kIntsPerPage / 2; ++i) {
                ASSERT_EQ(a.get(p * kIntsPerPage + i), p * 1000 + i);
                ASSERT_EQ(a.get(p * kIntsPerPage + kIntsPerPage / 2 + i),
                          10000 + p * 1000 + i);
            }
        }
        rt.barrier(2);
    });
}

} // namespace
} // namespace dsm
