/**
 * @file
 * Optimistic lock-free home reads (DSM_OPT_READ): the home's service
 * thread answers read-only page misses from a version-validated
 * snapshot without taking the home core lock.
 *  - read-only misses are actually served lock-free (counters), for
 *    both never-flushed initialization pages and flushed pages;
 *  - the torn-snapshot property: a seqlock-guarded flush application
 *    racing concurrent snapshot copies never lets a *validated*
 *    snapshot observe a mixed pre/post cacheline (run under TSan in
 *    the CI matrix — every access on the racing paths is atomic);
 *  - migration churn under optimistic reads: snapshots, epoch stamps
 *    and home hand-offs coexist without corrupting values;
 *  - checkpoint/restore rebuilds the (deliberately unserialized)
 *    version footers and the fast path keeps working after recovery;
 *  - the sender-side reply bypass stays ordered with respect to
 *    HomeMigrate broadcasts and forwarded lock grants (stress over
 *    the exact message mix that reorders when replies jump the
 *    inbox).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/cluster.hh"
#include "core/page_home.hh"
#include "core/shared_array.hh"
#include "mem/diff.hh"

namespace dsm {
namespace {

ClusterConfig
optReadConfig(int nprocs, int threads, bool opt_on)
{
    ClusterConfig cc;
    cc.nprocs = nprocs;
    cc.threadsPerNode = threads;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = 1024;
    cc.runtime = RuntimeConfig::parse("LRC-diff");
    cc.homeBasedLrc = true;
    cc.homeMigrateThreshold = 0; // no migration unless a test wants it
    // Pin explicitly (0, not the -1 sentinel) so a DSM_OPT_READ=1
    // environment sweep cannot turn the "off" reference legs on.
    cc.optimisticHomeReads = opt_on ? 1 : 0;
    return cc;
}

/** Producer/consumer over remotely homed pages: every consumer read
 *  miss is read-only, so with the fast path on the homes serve
 *  snapshots; the values must be identical either way. */
RunResult
producerConsumerRun(bool opt_on, std::vector<int> *out)
{
    constexpr int kInts = 1024; // 4 pages of 1024 bytes
    ClusterConfig cc = optReadConfig(4, 1, opt_on);
    Cluster cluster(cc);
    RunResult result = cluster.run([&](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, kInts, 4, "pc");
        const int self = rt.self();
        if (self == 0) {
            // Written under a lock, flushed to the pages' homes at
            // the release-side interval close.
            rt.acquire(1, AccessMode::Write);
            for (int i = 0; i < kInts; ++i)
                a.set(i, 3 * i + 7);
            rt.release(1);
        }
        rt.barrier(0);
        if (self != 0) {
            // Pure read-only misses against remote homes.
            rt.acquire(1, AccessMode::Read);
            for (int i = 0; i < kInts; i += 5)
                ASSERT_EQ(a.get(i), 3 * i + 7) << "index " << i;
            rt.release(1);
        }
        rt.barrier(1);
        if (self == 0 && out) {
            out->resize(kInts);
            a.load(0, out->data(), kInts);
        }
    });
    return result;
}

TEST(OptRead, ServesFlushedPagesLockFree)
{
    std::vector<int> with, without;
    RunResult on = producerConsumerRun(true, &with);
    RunResult off = producerConsumerRun(false, &without);
    EXPECT_GT(on.total.optReadsServed, 0u)
        << "fast path never engaged with DSM_OPT_READ on";
    EXPECT_EQ(off.total.optReadsServed, 0u)
        << "fast path engaged with DSM_OPT_READ off";
    EXPECT_EQ(off.total.optReadRetries, 0u);
    EXPECT_EQ(off.total.optReadFallbacks, 0u);
    ASSERT_EQ(with, without);
}

TEST(OptRead, SmpWorkersAndZeroRetryBudgetStayCorrect)
{
    // Two app threads per node fan read-only misses into the homes
    // concurrently (several parked callers per endpoint), and the
    // retry budget is pinned to zero so any snapshot that races a
    // flush falls back to the locked path immediately instead of
    // spinning — the degenerate budget must only cost performance,
    // never values.
    constexpr int kInts = 1024;
    constexpr int kEpochs = 8;
    ClusterConfig cc = optReadConfig(3, 2, true);
    cc.optReadMaxRetries = 0;
    Cluster cluster(cc);
    RunResult result = cluster.run([&](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, kInts, 4, "smp");
        const int nw = rt.nworkers();
        const int w = rt.worker();
        const int chunk = kInts / nw;
        rt.barrier(0);
        for (int e = 0; e < kEpochs; ++e) {
            rt.acquire(1, AccessMode::Write);
            for (int i = 0; i < chunk; ++i)
                a.set(w * chunk + i, e * 1000 + w * 10 + i);
            rt.release(1);
            rt.barrier(1 + 2 * e);
            const int peer = (w + 1) % nw;
            rt.acquire(1, AccessMode::Read);
            for (int i = 0; i < chunk; i += 7)
                ASSERT_EQ(a.get(peer * chunk + i),
                          e * 1000 + peer * 10 + i)
                    << "epoch " << e << " worker " << w;
            rt.release(1);
            rt.barrier(2 + 2 * e);
        }
    });
    EXPECT_GT(result.total.optReadsServed + result.total.optReadFallbacks,
              0u)
        << "the optimistic request path never engaged";
}

// ---------------------------------------------------------------------
// Torn-snapshot property test: guarded flush application (the only
// writer of committed home bytes) vs concurrent lock-free snapshot
// copies, at the page_home primitive level. A writer rewrites the
// whole page with generation g (every word = g) through
// applyDiffGuarded under the seqlock footer; readers run the exact
// validation protocol the service thread uses. Any validated snapshot
// whose cacheline mixes two generations is a torn read the footer
// failed to catch.

TEST(OptRead, TornSnapshotProperty)
{
    constexpr std::uint32_t kPageBytes = 1024;
    constexpr std::uint32_t kWords = kPageBytes / Diff::kWordBytes;
    const std::uint32_t nlines =
        (kPageBytes + kOptLineBytes - 1) / kOptLineBytes;

    std::vector<std::byte> page(kPageBytes, std::byte{0});
    std::vector<std::uint64_t> word_sums(kWords, 0);
    auto line_versions =
        std::make_unique<std::atomic<std::uint32_t>[]>(nlines);
    for (std::uint32_t l = 0; l < nlines; ++l)
        line_versions[l].store(0);

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        std::vector<std::byte> cur(kPageBytes);
        std::vector<std::byte> twin(kPageBytes, std::byte{0});
        std::uint32_t gen = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            ++gen;
            auto *words = reinterpret_cast<std::uint32_t *>(cur.data());
            for (std::uint32_t w = 0; w < kWords; ++w)
                words[w] = gen;
            // Whole-page diff (every word differs from the twin);
            // vt_sum = gen keeps the word-sum guard monotone.
            Diff d = Diff::create(cur.data(), twin.data(), kPageBytes,
                                  nullptr, DiffScan{});
            applyDiffGuarded(page.data(), word_sums, d, gen, nullptr,
                             nullptr, line_versions.get());
            twin = cur;
        }
    });

    constexpr int kReaders = 3;
    constexpr int kValidatedTarget = 400;
    std::vector<std::thread> readers;
    std::atomic<int> torn{0};
    for (int t = 0; t < kReaders; ++t) {
        readers.emplace_back([&] {
            std::vector<std::byte> buf(kPageBytes);
            std::vector<std::uint32_t> v1(nlines);
            int validated = 0;
            while (validated < kValidatedTarget) {
                bool busy = false;
                for (std::uint32_t l = 0; l < nlines; ++l) {
                    v1[l] = line_versions[l].load(
                        std::memory_order_acquire);
                    if ((v1[l] & 1u) != 0) {
                        busy = true;
                        break;
                    }
                }
                if (busy)
                    continue;
                optAtomicReadBytes(buf.data(), page.data(), kPageBytes);
                std::atomic_thread_fence(std::memory_order_acquire);
                bool changed = false;
                for (std::uint32_t l = 0; l < nlines; ++l) {
                    if (line_versions[l].load(
                            std::memory_order_acquire) != v1[l]) {
                        changed = true;
                        break;
                    }
                }
                if (changed)
                    continue;
                // Validated: every cacheline must be generation-pure.
                const auto *words =
                    reinterpret_cast<const std::uint32_t *>(buf.data());
                const std::uint32_t words_per_line =
                    kOptLineBytes / Diff::kWordBytes;
                for (std::uint32_t l = 0; l < nlines; ++l) {
                    const std::uint32_t first = words[l * words_per_line];
                    for (std::uint32_t k = 1; k < words_per_line; ++k) {
                        if (words[l * words_per_line + k] != first) {
                            torn.fetch_add(1);
                            break;
                        }
                    }
                }
                ++validated;
            }
        });
    }
    for (std::thread &r : readers)
        r.join();
    stop.store(true);
    writer.join();
    EXPECT_EQ(torn.load(), 0)
        << "a validated snapshot observed a mixed-generation cacheline";
}

// ---------------------------------------------------------------------
// Migration churn under optimistic reads (the stale-snapshot guard):
// an alternating writer pair drives migrate-to-last-writer hand-offs
// while a reader hammers read-only misses against the moving home.
// Epoch-stamped snapshots must never let a deposed home's copy
// shadow the current home's flushes.

TEST(OptRead, MigrationChurnUnderOptimisticReads)
{
    constexpr int kInts = 256; // one page
    constexpr int kRounds = 24;
    ClusterConfig cc = optReadConfig(3, 1, true);
    cc.homeMigrateLastWriter = 1;
    cc.homeWriterSwitchThreshold = 2;
    cc.homePingPongLimit = 0; // unbounded: keep the home moving
    Cluster cluster(cc);
    RunResult result = cluster.run([&](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, kInts, 4, "churn");
        const int self = rt.self();
        rt.barrier(0);
        for (int round = 0; round < kRounds; ++round) {
            // Writers 0 and 1 alternate under the lock (the migratory
            // pattern: each round switches the page's last writer).
            const int writer = round % 2;
            rt.acquire(7, AccessMode::Write);
            if (self == writer) {
                for (int i = 0; i < kInts; i += 4)
                    a.set(i, round * 1000 + i);
            }
            rt.release(7);
            rt.barrier(1 + 2 * round);
            if (self == 2) {
                rt.acquire(7, AccessMode::Read);
                for (int i = 0; i < kInts; i += 16)
                    ASSERT_EQ(a.get(i), round * 1000 + i)
                        << "round " << round << " index " << i;
                rt.release(7);
            }
            rt.barrier(2 + 2 * round);
        }
    });
    EXPECT_GT(result.total.homeMigrations, 0u)
        << "the churn never migrated a home — the test lost its point";
    EXPECT_GT(result.total.optReadsServed +
                  result.total.optReadFallbacks,
              0u)
        << "the reader never exercised the optimistic request path";
}

// ---------------------------------------------------------------------
// Checkpoint/restore: version footers are deliberately not on the
// wire — a restore rebuilds them zeroed (all even) and republishes
// the lock-free index, so post-recovery optimistic reads validate
// against fresh seqlocks.

TEST(OptRead, CheckpointRebuildsVersionFooters)
{
    constexpr int kInts = 512;
    constexpr int kEpochs = 6;
    ClusterConfig cc = optReadConfig(3, 1, true);
    // Pin every crash knob (the -1 sentinels would leak a nightly
    // chaos environment into this controlled scenario).
    cc.faultSeed = 1;
    cc.faultMsgDrop = 0;
    cc.checkpointEvery = 1;   // snapshot at every barrier epoch
    cc.faultKillNode = 1;     // chaos-kill a home mid-run...
    cc.faultKillEpoch = 3;    // ...at the third cut
    Cluster cluster(cc);
    RunResult result = cluster.run([&](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, kInts, 4, "ckpt");
        const int self = rt.self();
        const int np = rt.nprocs();
        const int chunk = kInts / np;
        rt.barrier(0);
        for (int e = 0; e < kEpochs; ++e) {
            rt.acquire(5, AccessMode::Write);
            for (int i = 0; i < chunk; ++i)
                a.set(self * chunk + i, e * 100 + self * 10 + i);
            rt.release(5);
            rt.barrier(1 + 2 * e);
            const int peer = (self + 1) % np;
            rt.acquire(5, AccessMode::Read);
            for (int i = 0; i < chunk; i += 7)
                ASSERT_EQ(a.get(peer * chunk + i),
                          e * 100 + peer * 10 + i)
                    << "epoch " << e;
            rt.release(5);
            rt.barrier(2 + 2 * e);
        }
    });
    EXPECT_GT(result.total.checkpointsTaken, 0u);
    EXPECT_GT(result.total.recoveryReplays, 0u);
}

// ---------------------------------------------------------------------
// Reply bypass vs HomeMigrate/LockForward ordering: with the
// sender-side bypass, a reply can overtake earlier non-reply messages
// (migration broadcasts, forwarded lock requests) from the same
// sender. The protocol guards (migration epochs, appliedVt dominance,
// is-home re-checks) must absorb every such reordering. This test
// maximizes the hazardous mix: forwarded lock chains (manager !=
// owner), aggressive home migration, SMP nodes (several parked
// callers per endpoint), and verifies exact values throughout.

TEST(OptRead, ReplyBypassOrderingUnderMigrationAndForwarding)
{
    constexpr int kInts = 512;
    constexpr int kRounds = 16;
    for (int threads : {1, 2}) {
        ClusterConfig cc = optReadConfig(4, threads, true);
        cc.homeMigrateThreshold = 2; // migrate eagerly on access counts
        Cluster cluster(cc);
        cluster.run([&](Runtime &rt) {
            auto a = SharedArray<int>::alloc(rt, kInts, 4, "bypass");
            const int nw = rt.nworkers();
            const int w = rt.worker();
            const int chunk = kInts / nw;
            rt.barrier(0);
            for (int round = 0; round < kRounds; ++round) {
                // Every worker bounces the same lock (manager node 0,
                // owner rotating: every acquire is a LockForward
                // chain) and rewrites its chunk; homes chase the
                // writers through HomeMigrate broadcasts whose
                // replies-in-flight the bypass can reorder past.
                rt.acquire(9, AccessMode::Write);
                for (int i = 0; i < chunk; ++i)
                    a.set(w * chunk + i, round * 10000 + w * 100 + i);
                rt.release(9);
                rt.barrier(1 + 2 * round);
                const int peer = (w + 1) % nw;
                rt.acquire(9, AccessMode::Read);
                for (int i = 0; i < chunk; i += 5)
                    ASSERT_EQ(a.get(peer * chunk + i),
                              round * 10000 + peer * 100 + i)
                        << "threads " << threads << " round " << round;
                rt.release(9);
                rt.barrier(2 + 2 * round);
            }
        });
    }
}

} // namespace
} // namespace dsm
