/**
 * @file
 * Crash tolerance: coordinated checkpointing and chaos-kill recovery
 * (core/checkpoint.hh) plus the fault-injection layer
 * (net/fault_injector.hh), proven with the same bit-identity property
 * the protocol-conformance grid uses. Each shared kernel
 * (conformance_kernels.hh) runs once uninterrupted and once with a
 * node killed at a barrier checkpoint (epoch >= 2) and rebuilt from
 * its latest snapshot — the victim's wiped state, the replay of its
 * parked inbox traffic, and the peers' retransmits must all be
 * invisible in the final shared state, under EC, homeless LRC, and
 * home-based LRC, across the (2, 4, 8 nodes) x (1, 2, 4
 * threads-per-node) grid. File-backed snapshots, the manifest, drop
 * retransmission, and the drop+kill combination get their own legs,
 * and a nightly-driven test reads the DSM_FAULT_* environment so the
 * chaos workflow can rotate seeds, victims, and kill epochs.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>

#include "conformance_kernels.hh"

namespace dsm {
namespace {

using namespace kernels;

struct ProtocolLeg
{
    const char *label;
    const char *config;
    bool home;
};

// The three implementations of the paper's comparison; recovery must
// be invisible under each (homeless LRC checkpoints its interval log
// and diff store, home-based LRC its home table and parked flushes,
// EC its lock bindings and incarnation history).
const ProtocolLeg kLegs[] = {
    {"EC", "EC-diff", false},
    {"LRC", "LRC-diff", false},
    {"LRC_home", "LRC-diff", true},
};

struct FaultPlan
{
    /** Chaos victim (-1 = nobody dies; checkpointing stays off unless
     *  a directory is set). */
    int killNode = -1;
    /** Checkpoint count at which the victim dies (ISSUE floor: the
     *  cut must not be the first one). */
    int killEpoch = 3;
    /** Real message-drop probability (0 = off). */
    double msgDrop = 0.0;
    long long seed = 1;
    /** Tier-1 snapshot directory (empty = in-memory tier 0 only). */
    std::string dir;
    /** Silent-peer outage victim (-1 = none): goes dark at its
     *  outageEpoch-th cut for outageMs of wall-clock, then restores
     *  from its latest checkpoint tier and rejoins. */
    int outageNode = -1;
    int outageEpoch = 2;
    int outageMs = 100;
    /** Failure-detector liveness deadline (ms); 0 = detector off.
     *  Outage legs arm it so survivors degrade instead of hanging. */
    int fdDeadlineMs = 0;
    /** Incremental delta checkpoints + full-anchor cadence. */
    bool delta = false;
    int anchorEvery = 8;
};

struct KernelCase
{
    const char *name;
    std::function<void(Runtime &)> run;
    std::size_t stateBytes;
    int nprocs;
    int threads;
};

struct RunOutput
{
    std::vector<std::byte> state;
    RunResult result;
};

RunOutput
runCase(const ProtocolLeg &leg, const KernelCase &kc, const FaultPlan &f)
{
    ClusterConfig cc;
    cc.nprocs = kc.nprocs;
    cc.threadsPerNode = kc.threads;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = 1024;
    cc.runtime = RuntimeConfig::parse(leg.config);
    cc.homeBasedLrc = leg.home;
    // A low threshold makes homes migrate *during* the kernels, so
    // recovery also covers mid-flight migration state.
    cc.homeMigrateThreshold = 4;
    // Every crash-tolerance knob is pinned explicitly: the nightly
    // chaos workflow exports DSM_FAULT_* for ChaosFromEnvironment
    // below, and the -1 env sentinels would leak that into these
    // controlled legs (including the uninterrupted references).
    cc.faultSeed = f.seed;
    cc.faultMsgDrop = f.msgDrop;
    cc.faultKillNode = f.killNode;
    cc.faultKillEpoch = f.killNode >= 0 ? f.killEpoch : 0;
    cc.faultOutageNode = f.outageNode;
    cc.faultOutageEpoch = f.outageNode >= 0 ? f.outageEpoch : 0;
    cc.faultOutageMs = f.outageMs;
    cc.fdDeadlineMs = f.fdDeadlineMs;
    cc.faultRtoFirstUs = 2'000;
    cc.faultRtoCapUs = 500'000;
    cc.ckptDelta = f.delta ? 1 : 0;
    cc.ckptAnchorEvery = f.anchorEvery;
    cc.checkpointEvery =
        (f.killNode >= 0 || f.outageNode >= 0 || !f.dir.empty()) ? 1 : 0;
    cc.ckptDir = f.dir;

    Cluster cluster(cc);
    RunOutput out;
    out.result = cluster.run(kc.run);
    out.state.resize(kc.stateBytes);
    std::memcpy(out.state.data(), cluster.memory(0, 0), kc.stateBytes);
    return out;
}

void
expectBitIdentical(const KernelCase &kc, const ProtocolLeg &leg,
                   const std::vector<std::byte> &reference,
                   const std::vector<std::byte> &got)
{
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], reference[i])
            << kc.name << " np=" << kc.nprocs << "x" << kc.threads
            << ": " << leg.label
            << " with faults differs from the uninterrupted run at byte "
            << i;
    }
}

class CheckpointRecovery : public ::testing::TestWithParam<KernelCase>
{};

// The acceptance property: a node killed at epoch >= 2 and restored
// from its last barrier checkpoint leaves the final shared state
// bit-identical to the uninterrupted run, for all three protocols.
TEST_P(CheckpointRecovery, ChaosKillIsInvisible)
{
    const KernelCase &kc = GetParam();
    FaultPlan kill;
    kill.killNode = kc.nprocs - 1;
    for (const ProtocolLeg &leg : kLegs) {
        const RunOutput reference = runCase(leg, kc, FaultPlan{});
        EXPECT_EQ(reference.result.total.checkpointsTaken, 0u);
        EXPECT_EQ(reference.result.total.recoveryReplays, 0u);
        EXPECT_EQ(reference.result.total.msgRetransmits, 0u);
        EXPECT_EQ(reference.result.checkpointBytes, 0u);

        const RunOutput chaos = runCase(leg, kc, kill);
        expectBitIdentical(kc, leg, reference.state, chaos.state);
        // Every node checkpoints at every barrier cut; exactly one
        // node died and was rebuilt.
        EXPECT_GE(chaos.result.total.checkpointsTaken,
                  static_cast<std::uint64_t>(kc.nprocs));
        EXPECT_EQ(chaos.result.total.recoveryReplays, 1u);
        EXPECT_GT(chaos.result.checkpointBytes, 0u);
        EXPECT_GT(chaos.result.restoreTimeNs, 0u);
    }
}

std::vector<KernelCase>
recoveryCases()
{
    std::vector<KernelCase> cases;
    for (int np : {2, 4, 8}) {
        for (int t : {1, 2, 4}) {
            cases.push_back(
                {"stencil", stencilKernel, stencilBytes(), np, t});
            cases.push_back({"ring", ringKernel, ringBytes(), np, t});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Kernels, CheckpointRecovery,
                         ::testing::ValuesIn(recoveryCases()),
                         [](const auto &info) {
                             return std::string(info.param.name) + "_np" +
                                    std::to_string(info.param.nprocs) +
                                    "x" +
                                    std::to_string(info.param.threads);
                         });

// Killing node 0 kills the lock *and* barrier manager: the snapshot
// must carry the managed-lock table and the barrier generations, or
// every peer's next synchronization hangs or corrupts.
TEST(CheckpointRecoveryEdge, KillTheManagerNode)
{
    const KernelCase kc = {"taskqueue", taskQueueKernel,
                           taskQueueBytes(), 4, 2};
    FaultPlan kill;
    kill.killNode = 0;
    kill.killEpoch = 2;
    for (const ProtocolLeg &leg : kLegs) {
        const RunOutput reference = runCase(leg, kc, FaultPlan{});
        const RunOutput chaos = runCase(leg, kc, kill);
        expectBitIdentical(kc, leg, reference.state, chaos.state);
        EXPECT_EQ(chaos.result.total.recoveryReplays, 1u);
    }
}

// Tier-1 persistence: with a snapshot directory the victim is rebuilt
// from the *file*, not the in-memory blob, and the manifest records
// one frontier line per cut.
TEST(CheckpointRecoveryEdge, FileBackedRestoreAndManifest)
{
    namespace fs = std::filesystem;
    const KernelCase kc = {"stencil", stencilKernel, stencilBytes(), 4,
                           2};
    const fs::path dir =
        fs::path(::testing::TempDir()) / "dsm-ckpt-filebacked";
    fs::remove_all(dir); // stale manifests append otherwise

    FaultPlan kill;
    kill.killNode = 2;
    kill.dir = dir.string();
    const ProtocolLeg &leg = kLegs[2]; // home-based LRC: richest state
    const RunOutput reference = runCase(leg, kc, FaultPlan{});
    const RunOutput chaos = runCase(leg, kc, kill);
    expectBitIdentical(kc, leg, reference.state, chaos.state);
    EXPECT_EQ(chaos.result.total.recoveryReplays, 1u);

    // The blob the victim restored from, and every node's manifest.
    EXPECT_TRUE(fs::exists(dir / "node2-epoch3.bin"));
    for (int node = 0; node < kc.nprocs; ++node) {
        const fs::path manifest =
            dir / ("manifest-node" + std::to_string(node) + ".txt");
        ASSERT_TRUE(fs::exists(manifest)) << manifest;
        std::ifstream in(manifest);
        std::string line;
        int lines = 0;
        while (std::getline(in, line)) {
            ++lines;
            EXPECT_NE(line.find("frontier"), std::string::npos) << line;
        }
        // One line per cut; the stencil crosses >= killEpoch barriers.
        EXPECT_GE(lines, kill.killEpoch);
    }
    fs::remove_all(dir);
}

// Checkpointing without a kill (directory set, nobody dies): snapshots
// stream to disk, nothing is restored, the run is undisturbed.
TEST(CheckpointRecoveryEdge, SnapshotOnlyRunLeavesStateAlone)
{
    namespace fs = std::filesystem;
    const KernelCase kc = {"ring", ringKernel, ringBytes(), 2, 2};
    const fs::path dir =
        fs::path(::testing::TempDir()) / "dsm-ckpt-snaponly";
    fs::remove_all(dir);

    FaultPlan snap;
    snap.dir = dir.string();
    const RunOutput reference = runCase(kLegs[1], kc, FaultPlan{});
    const RunOutput got = runCase(kLegs[1], kc, snap);
    expectBitIdentical(kc, kLegs[1], reference.state, got.state);
    EXPECT_GT(got.result.total.checkpointsTaken, 0u);
    EXPECT_EQ(got.result.total.recoveryReplays, 0u);
    EXPECT_EQ(got.result.restoreTimeNs, 0u);
    EXPECT_GT(got.result.checkpointBytes, 0u);
    EXPECT_TRUE(fs::exists(dir / "node0-epoch1.bin"));
    fs::remove_all(dir);
}

// The fault injector alone: real (unmodeled) drops of direct-request
// traffic, recovered by the endpoint's timeout/backoff retransmission
// and the receiver's dedup window. The final state must not notice.
TEST(FaultInjection, DropRetransmitRecovers)
{
    const KernelCase kc = {"stencil", stencilKernel, stencilBytes(), 4,
                           2};
    FaultPlan drops;
    drops.msgDrop = 0.15;
    drops.seed = 42;
    for (const ProtocolLeg &leg : kLegs) {
        const RunOutput reference = runCase(leg, kc, FaultPlan{});
        const RunOutput got = runCase(leg, kc, drops);
        expectBitIdentical(kc, leg, reference.state, got.state);
        EXPECT_GT(got.result.total.msgRetransmits, 0u)
            << leg.label << ": a 15% drop rate retransmitted nothing";
        EXPECT_EQ(got.result.total.recoveryReplays, 0u);
    }
}

// Drops and a chaos kill together — retransmits land in the dead
// victim's parked inbox, the restored node answers duplicates from
// its dedup window, and the state still matches.
TEST(FaultInjection, DropsPlusChaosKill)
{
    const KernelCase kc = {"stencil", stencilKernel, stencilBytes(), 4,
                           2};
    FaultPlan chaos;
    chaos.killNode = 1;
    chaos.msgDrop = 0.05;
    chaos.seed = 7;
    for (const ProtocolLeg &leg : kLegs) {
        const RunOutput reference = runCase(leg, kc, FaultPlan{});
        const RunOutput got = runCase(leg, kc, chaos);
        expectBitIdentical(kc, leg, reference.state, got.state);
        EXPECT_EQ(got.result.total.recoveryReplays, 1u);
    }
}

// ---------------------------------------------------------------------
// Self-healing: silent-peer outages, failure detection and graceful
// degradation. The victim goes dark mid-run (no crash message, no
// farewell — its traffic is simply dropped for outageMs); survivors'
// failure detectors must declare it down, their blocked waits must
// degrade into counted typed retries instead of hanging, and the
// victim must restore from its last checkpoint and rejoin with the
// final state bit-identical to the uninterrupted run.

class SilentPeerFailover : public ::testing::TestWithParam<KernelCase>
{};

TEST_P(SilentPeerFailover, DetectedDegradedAndRecovered)
{
    const KernelCase &kc = GetParam();
    FaultPlan outage;
    outage.outageNode = kc.nprocs - 1; // node 0 stays up: it manages
    outage.outageEpoch = 2;            // locks and barriers
    outage.outageMs = 100;
    outage.fdDeadlineMs = 25;
    for (const ProtocolLeg &leg : kLegs) {
        const RunOutput reference = runCase(leg, kc, FaultPlan{});
        EXPECT_EQ(reference.result.total.peerDownDetections, 0u);
        EXPECT_EQ(reference.result.total.peerUnavailableRetries, 0u);

        const RunOutput dark = runCase(leg, kc, outage);
        expectBitIdentical(kc, leg, reference.state, dark.state);
        // Exactly one node went dark and was rebuilt from its cut.
        EXPECT_EQ(dark.result.total.recoveryReplays, 1u) << leg.label;
        // Survivors noticed: the missed liveness deadline flipped the
        // victim down (counted once cluster-wide, CAS-guarded) ...
        EXPECT_GE(dark.result.total.peerDownDetections, 1u) << leg.label;
        // ... their blocked waits degraded into typed retries instead
        // of parking silently for the outage's duration ...
        EXPECT_GE(dark.result.total.peerUnavailableRetries, 1u)
            << leg.label;
        // ... and the victim's first post-restore delivery revived it.
        EXPECT_GE(dark.result.total.peerDownRecoveries, 1u) << leg.label;
        EXPECT_GT(dark.result.restoreTimeNs, 0u);
    }
}

std::vector<KernelCase>
failoverCases()
{
    std::vector<KernelCase> cases;
    for (int np : {2, 4, 8}) {
        for (int t : {1, 2, 4}) {
            cases.push_back(
                {"stencil", stencilKernel, stencilBytes(), np, t});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, SilentPeerFailover,
                         ::testing::ValuesIn(failoverCases()),
                         [](const auto &info) {
                             return std::string("np") +
                                    std::to_string(info.param.nprocs) +
                                    "x" +
                                    std::to_string(info.param.threads);
                         });

// Graceful degradation, the strongest form: a survivor whose read
// misses on a page *homed at the dark node* does not wait out the
// outage — the typed PeerUnavailable outcome makes it re-host the
// page from the victim's persisted checkpoint frontier (the frontier
// dominates the reader's need, so the bytes are exact).
TEST(SilentPeerFailoverEdge, ReadsRehostFromPersistedImage)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(::testing::TempDir()) / "dsm-ckpt-rehost";
    fs::remove_all(dir);

    constexpr int kWords = 1024; // 8 pages at 1024 B: odd ones homed
                                 // at node 1 (home = page % nprocs)
    const auto kernel = [](Runtime &rt) {
        auto a = SharedArray<std::uint64_t>::alloc(rt, kWords, 4, "rh");
        if (rt.self() == 1) {
            for (int i = 0; i < kWords; ++i)
                a.set(i, static_cast<std::uint64_t>(i) + 1);
        }
        rt.barrier(1); // cut 1: both nodes persist images
        if (rt.self() == 0) {
            // Let node 1 race to barrier 2, cut, and go dark; then
            // read mid-epoch while it is provably down.
            std::this_thread::sleep_for(std::chrono::milliseconds(120));
            for (int i = 0; i < kWords; ++i)
                ASSERT_EQ(a.get(i), static_cast<std::uint64_t>(i) + 1);
        }
        rt.barrier(2); // node 1's outage cut
        rt.barrier(3);
    };

    const KernelCase kc = {"rehost", kernel,
                           kWords * sizeof(std::uint64_t), 2, 1};
    const ProtocolLeg &leg = kLegs[2]; // home-based LRC

    FaultPlan plain;
    plain.dir = (dir / "ref").string();
    const RunOutput reference = runCase(leg, kc, plain);
    EXPECT_EQ(reference.result.total.rehostedFetches, 0u);

    FaultPlan outage;
    outage.dir = (dir / "dark").string();
    outage.outageNode = 1;
    outage.outageEpoch = 2;
    outage.outageMs = 400; // node 0's reads land well inside
    outage.fdDeadlineMs = 10;
    const RunOutput dark = runCase(leg, kc, outage);
    expectBitIdentical(kc, leg, reference.state, dark.state);
    EXPECT_GE(dark.result.total.rehostedFetches, 1u)
        << "reads of victim-homed pages waited out the outage instead "
           "of re-hosting from the checkpoint frontier";
    EXPECT_EQ(dark.result.total.recoveryReplays, 1u);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Incremental delta checkpoints.

TEST(DeltaCheckpoint, RoundTripRebuildsExactImage)
{
    std::vector<std::byte> prev(4096 + 13);
    for (std::size_t i = 0; i < prev.size(); ++i)
        prev[i] = static_cast<std::byte>(i * 31u);
    // A few scattered runs of change, plus a longer tail.
    std::vector<std::byte> cur = prev;
    cur[100] = std::byte{0xaa};
    cur[101] = std::byte{0xbb};
    for (int i = 2000; i < 2100; ++i)
        cur[i] = std::byte{0x5c};
    cur.resize(prev.size() + 200, std::byte{0x77});

    const std::vector<std::byte> delta =
        CheckpointCoordinator::makeDelta(prev, cur, 4);
    EXPECT_LT(delta.size(), cur.size() / 2)
        << "a sparse change should not cost a full image";
    const std::vector<std::byte> rebuilt =
        CheckpointCoordinator::applyDelta(prev, delta, 4);
    ASSERT_EQ(rebuilt.size(), cur.size());
    EXPECT_EQ(std::memcmp(rebuilt.data(), cur.data(), cur.size()), 0);

    // Identical images: the delta degenerates to headers + tail.
    const std::vector<std::byte> none =
        CheckpointCoordinator::makeDelta(prev, prev, 9);
    EXPECT_LT(none.size(), 128u);
    const std::vector<std::byte> same =
        CheckpointCoordinator::applyDelta(prev, none, 9);
    EXPECT_EQ(same, prev);
}

// A victim killed at a *delta* cut restores through the persisted
// base + delta chain (anchor walked back, deltas replayed forward) —
// and the rebuilt node is bit-identical to the uninterrupted run.
TEST(DeltaCheckpoint, ChainRestoreIsBitIdentical)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(::testing::TempDir()) / "dsm-ckpt-deltachain";
    fs::remove_all(dir);

    const KernelCase kc = {"stencil", stencilKernel, stencilBytes(), 4,
                           2};
    FaultPlan kill;
    kill.killNode = 2;
    kill.killEpoch = 5; // anchors at 1, 4, 7: epoch 5 is a delta cut
    kill.dir = dir.string();
    kill.delta = true;
    kill.anchorEvery = 3;
    for (const ProtocolLeg &leg : kLegs) {
        fs::remove_all(dir);
        const RunOutput reference = runCase(leg, kc, FaultPlan{});
        const RunOutput chaos = runCase(leg, kc, kill);
        expectBitIdentical(kc, leg, reference.state, chaos.state);
        EXPECT_EQ(chaos.result.total.recoveryReplays, 1u) << leg.label;
        EXPECT_GT(chaos.result.total.checkpointDeltaBytes, 0u)
            << leg.label;

        // The manifest records the chain: full anchors and the deltas'
        // base epochs.
        std::ifstream in(dir.string() + "/manifest-node2.txt");
        ASSERT_TRUE(in.good());
        std::string all((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        EXPECT_NE(all.find("kind full"), std::string::npos);
        EXPECT_NE(all.find("kind delta base 4"), std::string::npos);
    }
    fs::remove_all(dir);
}

// The point of deltas: a sparse-write epoch stores a fraction of the
// full image. The kernel populates a 128 KiB array once, then touches
// a handful of words per epoch — the final cut's stored bytes must
// shrink at least 5x against full-image checkpointing.
TEST(DeltaCheckpoint, SparseWritesShrinkStoredBytesFiveFold)
{
    constexpr int kWords = 16384;
    const auto sparse = [](Runtime &rt) {
        auto a =
            SharedArray<std::uint64_t>::alloc(rt, kWords, 4, "sparse");
        const int w = rt.worker();
        const int nw = rt.nworkers();
        rt.barrier(0);
        for (int i = w; i < kWords; i += nw) // dense epoch: populate
            a.set(i, static_cast<std::uint64_t>(i));
        rt.barrier(1);
        for (int e = 0; e < 4; ++e) { // sparse epochs: 8 words each
            if (w == 0) {
                for (int i = 0; i < 8; ++i)
                    a.set(i, static_cast<std::uint64_t>(100 * e + i));
            }
            rt.barrier(static_cast<BarrierId>(2 + e));
        }
    };
    const KernelCase kc = {"sparse", sparse, kWords * sizeof(std::uint64_t),
                           2, 1};
    // Home-based LRC: flushed diffs leave the node, so the snapshot is
    // dominated by the arena (serialized at a fixed offset) and the
    // word-run scan sees exactly the sparse writes. Homeless LRC's
    // growing interval log would smear the comparison.
    const ProtocolLeg &leg = kLegs[2];

    FaultPlan fullPlan;
    fullPlan.dir = (std::filesystem::path(::testing::TempDir()) /
                    "dsm-ckpt-full")
                       .string();
    std::filesystem::remove_all(fullPlan.dir);
    FaultPlan deltaPlan = fullPlan;
    deltaPlan.dir = (std::filesystem::path(::testing::TempDir()) /
                     "dsm-ckpt-delta")
                        .string();
    std::filesystem::remove_all(deltaPlan.dir);
    deltaPlan.delta = true;
    deltaPlan.anchorEvery = 8; // anchor at 1; cuts 2..6 are deltas

    const RunOutput full = runCase(leg, kc, fullPlan);
    const RunOutput incr = runCase(leg, kc, deltaPlan);
    expectBitIdentical(kc, leg, full.state, incr.state);
    EXPECT_EQ(full.result.total.checkpointDeltaBytes, 0u);
    EXPECT_GT(incr.result.total.checkpointDeltaBytes, 0u);
    ASSERT_GT(incr.result.checkpointBytes, 0u);
    EXPECT_GE(full.result.checkpointBytes,
              5 * incr.result.checkpointBytes)
        << "final sparse-epoch cut stored " << incr.result.checkpointBytes
        << " bytes against a " << full.result.checkpointBytes
        << "-byte full image";
    if (std::getenv("DSM_TEST_KEEP") == nullptr) {
        std::filesystem::remove_all(fullPlan.dir);
        std::filesystem::remove_all(deltaPlan.dir);
    }
}

// The nightly chaos workflow's entry point: knobs left at their -1
// sentinels resolve from DSM_FAULT_SEED / DSM_FAULT_MSG_DROP /
// DSM_FAULT_KILL_NODE / DSM_FAULT_KILL_EPOCH, so the workflow rotates
// seeds, victims, and epochs per run without rebuilding.
TEST(FaultInjection, ChaosFromEnvironment)
{
    const char *kill = std::getenv("DSM_FAULT_KILL_NODE");
    const char *drop = std::getenv("DSM_FAULT_MSG_DROP");
    if (kill == nullptr && drop == nullptr)
        GTEST_SKIP() << "no DSM_FAULT_* in the environment";

    const KernelCase kc = {"stencil", stencilKernel, stencilBytes(), 8,
                           2};
    for (const ProtocolLeg &leg : kLegs) {
        // Explicitly-off reference vs. an all-defaults config that
        // picks the whole fault plan up from the environment.
        const RunOutput reference = runCase(leg, kc, FaultPlan{});

        ClusterConfig cc;
        cc.nprocs = kc.nprocs;
        cc.threadsPerNode = kc.threads;
        cc.arenaBytes = 1u << 20;
        cc.pageSize = 1024;
        cc.runtime = RuntimeConfig::parse(leg.config);
        cc.homeBasedLrc = leg.home;
        cc.homeMigrateThreshold = 4;
        Cluster cluster(cc);
        const RunResult result = cluster.run(kc.run);
        std::vector<std::byte> state(kc.stateBytes);
        std::memcpy(state.data(), cluster.memory(0, 0), kc.stateBytes);

        expectBitIdentical(kc, leg, reference.state, state);
        const char *epoch = std::getenv("DSM_FAULT_KILL_EPOCH");
        const int victim = kill != nullptr ? std::atoi(kill) : -1;
        // The stencil crosses 2 + 2 * kSteps barrier cuts; a rotated
        // kill epoch beyond that never fires (still a valid run).
        const bool fires = victim >= 0 && victim < kc.nprocs &&
                           (epoch == nullptr ||
                            std::atoi(epoch) <= 2 + 2 * kSteps);
        if (fires) {
            EXPECT_EQ(result.total.recoveryReplays, 1u) << leg.label;
        }
    }
}

// The nightly silent-peer leg's entry point: victim, epoch, outage
// length and detector deadline come from DSM_FAULT_OUTAGE_* /
// DSM_FD_DEADLINE_MS, everything else takes the library defaults.
TEST(FaultInjection, OutageFromEnvironment)
{
    const char *victimEnv = std::getenv("DSM_FAULT_OUTAGE_NODE");
    if (victimEnv == nullptr)
        GTEST_SKIP() << "no DSM_FAULT_OUTAGE_NODE in the environment";

    const KernelCase kc = {"stencil", stencilKernel, stencilBytes(), 8,
                           2};
    for (const ProtocolLeg &leg : kLegs) {
        const RunOutput reference = runCase(leg, kc, FaultPlan{});

        ClusterConfig cc;
        cc.nprocs = kc.nprocs;
        cc.threadsPerNode = kc.threads;
        cc.arenaBytes = 1u << 20;
        cc.pageSize = 1024;
        cc.runtime = RuntimeConfig::parse(leg.config);
        cc.homeBasedLrc = leg.home;
        cc.homeMigrateThreshold = 4;
        Cluster cluster(cc);
        const RunResult result = cluster.run(kc.run);
        std::vector<std::byte> state(kc.stateBytes);
        std::memcpy(state.data(), cluster.memory(0, 0), kc.stateBytes);

        expectBitIdentical(kc, leg, reference.state, state);
        const char *epoch = std::getenv("DSM_FAULT_OUTAGE_EPOCH");
        const int victim = std::atoi(victimEnv);
        const bool fires = victim >= 0 && victim < kc.nprocs &&
                           (epoch == nullptr ||
                            std::atoi(epoch) <= 2 + 2 * kSteps);
        if (fires) {
            EXPECT_EQ(result.total.recoveryReplays, 1u) << leg.label;
            EXPECT_GE(result.total.peerDownDetections, 1u) << leg.label;
            EXPECT_GE(result.total.peerDownRecoveries, 1u) << leg.label;
        }
    }
}

} // namespace
} // namespace dsm
