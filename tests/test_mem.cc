/**
 * @file
 * Unit and property tests for the memory layer: arena, page table,
 * twins, diffs, block timestamps, dirty bitmaps, region table.
 */

#include <gtest/gtest.h>

#include "mem/diff.hh"
#include "mem/dirty_bits.hh"
#include "mem/page_table.hh"
#include "mem/region_table.hh"
#include "mem/shared_arena.hh"
#include "mem/twin_store.hh"
#include "mem/word_ts.hh"
#include "util/rng.hh"

namespace dsm {
namespace {

TEST(SharedArena, AllocAlignsAndAdvances)
{
    SharedArena arena(1 << 16, 4096);
    EXPECT_EQ(arena.alloc(10, 8), 0u);
    EXPECT_EQ(arena.alloc(4, 8), 16u);
    EXPECT_EQ(arena.alloc(1, 64), 64u);
    EXPECT_TRUE(arena.contains(0, 10));
    EXPECT_FALSE(arena.contains(64, 2));
    EXPECT_TRUE(arena.contains(64, 1));
}

TEST(SharedArena, PageMath)
{
    SharedArena arena(8192, 1024);
    EXPECT_EQ(arena.numPages(), 8u);
    EXPECT_EQ(arena.pageOf(0), 0u);
    EXPECT_EQ(arena.pageOf(1023), 0u);
    EXPECT_EQ(arena.pageOf(1024), 1u);
    EXPECT_EQ(arena.pageBase(3), 3072u);
    auto pages = arena.pagesIn(1000, 2000);
    ASSERT_EQ(pages.size(), 3u);
    EXPECT_EQ(pages[0], 0u);
    EXPECT_EQ(pages[2], 2u);
}

TEST(SharedArena, ZeroInitialized)
{
    SharedArena arena(4096, 4096);
    for (std::size_t i = 0; i < 4096; ++i)
        ASSERT_EQ(arena.at(0)[i], std::byte{0});
}

TEST(PageTable, FaultPredicates)
{
    PageTable pt(4, PageAccess::Read);
    EXPECT_FALSE(pt.readFaults(0));
    EXPECT_TRUE(pt.writeFaults(0));
    pt.setAccess(1, PageAccess::None);
    EXPECT_TRUE(pt.readFaults(1));
    EXPECT_TRUE(pt.writeFaults(1));
    pt.setAccess(2, PageAccess::ReadWrite);
    EXPECT_FALSE(pt.writeFaults(2));
    pt.setAll(PageAccess::ReadWrite);
    EXPECT_FALSE(pt.writeFaults(1));
}

TEST(TwinStore, PageLifecycle)
{
    TwinStore twins;
    std::vector<std::byte> data(64, std::byte{7});
    twins.makePage(3, data.data(), data.size());
    EXPECT_TRUE(twins.hasPage(3));
    EXPECT_FALSE(twins.hasPage(2));
    EXPECT_EQ(twins.pageTwin(3)[10], std::byte{7});
    twins.pageTwinMut(3)[10] = std::byte{9};
    EXPECT_EQ(twins.pageTwin(3)[10], std::byte{9});
    twins.dropPage(3);
    EXPECT_FALSE(twins.hasPage(3));
}

TEST(TwinStore, RangeTwins)
{
    TwinStore twins;
    twins.makeRange(5, std::vector<std::byte>(16, std::byte{1}));
    EXPECT_TRUE(twins.hasRange(5));
    EXPECT_EQ(twins.rangeTwin(5).size(), 16u);
    twins.dropRange(5);
    EXPECT_FALSE(twins.hasRange(5));
}

TEST(Diff, EmptyWhenIdentical)
{
    std::vector<std::byte> a(128, std::byte{3});
    Diff d = Diff::create(a.data(), a.data(), 128);
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.dataBytes(), 0u);
}

TEST(Diff, CapturesChangedRuns)
{
    std::vector<std::byte> twin(64, std::byte{0});
    std::vector<std::byte> cur = twin;
    cur[4] = std::byte{1};
    cur[5] = std::byte{2};
    cur[40] = std::byte{3};
    NodeStats stats;
    Diff d = Diff::create(cur.data(), twin.data(), 64, &stats);
    ASSERT_EQ(d.diffRuns().size(), 2u);
    EXPECT_EQ(d.diffRuns()[0].offset, 4u);
    EXPECT_EQ(d.diffRuns()[0].data.size(), 4u); // word granularity
    EXPECT_EQ(d.diffRuns()[1].offset, 40u);
    EXPECT_EQ(stats.diffsCreated, 1u);

    std::vector<std::byte> dst = twin;
    d.apply(dst.data(), &stats);
    EXPECT_EQ(dst, cur);
    EXPECT_EQ(stats.diffsApplied, 1u);
}

TEST(Diff, HandlesUnalignedTail)
{
    std::vector<std::byte> twin(10, std::byte{0});
    std::vector<std::byte> cur = twin;
    cur[9] = std::byte{5};
    Diff d = Diff::create(cur.data(), twin.data(), 10);
    std::vector<std::byte> dst = twin;
    d.apply(dst.data());
    EXPECT_EQ(dst, cur);
}

TEST(Diff, WireRoundTrip)
{
    std::vector<std::byte> twin(256, std::byte{0});
    std::vector<std::byte> cur = twin;
    for (int i : {0, 1, 2, 3, 100, 101, 255})
        cur[i] = std::byte{static_cast<unsigned char>(i)};
    Diff d = Diff::create(cur.data(), twin.data(), 256);
    WireWriter w;
    d.encode(w);
    auto bytes = w.take();
    EXPECT_EQ(bytes.size(), d.wireBytes());
    WireReader r(bytes);
    Diff back = Diff::decode(r);
    EXPECT_EQ(back, d);
}

/** Property: create+apply reconstructs the modified buffer exactly,
 *  for random modification patterns. */
class DiffProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(DiffProperty, RoundTripRandomBuffers)
{
    Rng rng(GetParam());
    const std::uint32_t len =
        64 + static_cast<std::uint32_t>(rng.below(512));
    std::vector<std::byte> twin(len);
    for (auto &b : twin)
        b = std::byte{static_cast<unsigned char>(rng.below(256))};
    std::vector<std::byte> cur = twin;
    const int nmods = 1 + static_cast<int>(rng.below(40));
    for (int i = 0; i < nmods; ++i) {
        cur[rng.below(len)] =
            std::byte{static_cast<unsigned char>(rng.below(256))};
    }
    Diff d = Diff::create(cur.data(), twin.data(), len);
    std::vector<std::byte> dst = twin;
    d.apply(dst.data());
    EXPECT_EQ(dst, cur);

    // And over the wire.
    WireWriter w;
    d.encode(w);
    auto bytes = w.take();
    WireReader r(bytes);
    Diff back = Diff::decode(r);
    std::vector<std::byte> dst2 = twin;
    back.apply(dst2.data());
    EXPECT_EQ(dst2, cur);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffProperty,
                         ::testing::Range<std::uint64_t>(0, 24));

TEST(BlockTimestamps, CollectRunsByEqualValue)
{
    BlockTimestamps ts(8);
    ts.setRange(1, 3, 7);
    ts.set(4, 9);
    ts.set(6, 7);
    auto runs = ts.collect([](std::uint64_t t) { return t > 5; });
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0], (::dsm::TsRun{1, 3, 7}));
    EXPECT_EQ(runs[1], (::dsm::TsRun{4, 1, 9}));
    EXPECT_EQ(runs[2], (::dsm::TsRun{6, 1, 7}));
}

TEST(BlockTimestamps, PackUnpack)
{
    const std::uint64_t ts = packTs(5, 1234);
    EXPECT_EQ(tsProc(ts), 5);
    EXPECT_EQ(tsInterval(ts), 1234u);
}

TEST(DirtyBitmap, MarkScanClear)
{
    DirtyBitmap dirty(8192, 1024);
    dirty.markRange(100, 8);
    dirty.markRange(2048, 4);
    EXPECT_TRUE(dirty.pageDirty(0));
    EXPECT_FALSE(dirty.pageDirty(1));
    EXPECT_TRUE(dirty.pageDirty(2));
    auto pages = dirty.dirtyPages();
    ASSERT_EQ(pages.size(), 2u);
    EXPECT_EQ(pages[0], 0u);
    EXPECT_EQ(pages[1], 2u);

    auto runs = dirty.dirtyRunsIn(0, 1024);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].start, 25u); // block 100/4
    EXPECT_EQ(runs[0].length, 2u); // bytes 100..107

    EXPECT_EQ(dirty.countDirtyIn(0, 8192), 3u);
    dirty.clearRange(0, 1024);
    EXPECT_FALSE(dirty.pageDirty(0));
    EXPECT_TRUE(dirty.pageDirty(2));
    dirty.clearAll();
    EXPECT_TRUE(dirty.dirtyPages().empty());
}

TEST(DirtyBitmap, UnalignedRangeCoversWholeWords)
{
    DirtyBitmap dirty(4096, 4096);
    dirty.markRange(6, 1); // byte 6 -> word block 1
    EXPECT_TRUE(dirty.test(1));
    EXPECT_FALSE(dirty.test(0));
    EXPECT_FALSE(dirty.test(2));
}

TEST(RegionTable, LookupAndGranularity)
{
    RegionTable regions;
    regions.add({0, 100, 4, "a"});
    regions.add({128, 64, 8, "b"});
    EXPECT_EQ(regions.find(50)->name, "a");
    EXPECT_EQ(regions.find(100), nullptr);
    EXPECT_EQ(regions.find(128)->name, "b");
    EXPECT_EQ(regions.find(191)->name, "b");
    EXPECT_EQ(regions.find(192), nullptr);
    EXPECT_EQ(regions.blockSizeAt(130), 8u);
    EXPECT_EQ(regions.blockSizeAt(10), 4u);
    EXPECT_EQ(regions.blockSizeAt(5000), 4u);
    EXPECT_EQ(regions.count(), 2u);
}

} // namespace
} // namespace dsm
