/**
 * @file
 * Unit and property tests for the memory layer: arena, page table,
 * twins, diffs, block timestamps, dirty bitmaps, region table.
 */

#include <gtest/gtest.h>

#include "mem/diff.hh"
#include "mem/dirty_bits.hh"
#include "mem/page_table.hh"
#include "mem/region_table.hh"
#include "mem/shared_arena.hh"
#include "mem/twin_store.hh"
#include "mem/word_ts.hh"
#include "util/rng.hh"

namespace dsm {
namespace {

TEST(SharedArena, AllocAlignsAndAdvances)
{
    SharedArena arena(1 << 16, 4096);
    EXPECT_EQ(arena.alloc(10, 8), 0u);
    EXPECT_EQ(arena.alloc(4, 8), 16u);
    EXPECT_EQ(arena.alloc(1, 64), 64u);
    EXPECT_TRUE(arena.contains(0, 10));
    EXPECT_FALSE(arena.contains(64, 2));
    EXPECT_TRUE(arena.contains(64, 1));
}

TEST(SharedArena, PageMath)
{
    SharedArena arena(8192, 1024);
    EXPECT_EQ(arena.numPages(), 8u);
    EXPECT_EQ(arena.pageOf(0), 0u);
    EXPECT_EQ(arena.pageOf(1023), 0u);
    EXPECT_EQ(arena.pageOf(1024), 1u);
    EXPECT_EQ(arena.pageBase(3), 3072u);
    auto pages = arena.pagesIn(1000, 2000);
    ASSERT_EQ(pages.size(), 3u);
    EXPECT_EQ(pages[0], 0u);
    EXPECT_EQ(pages[2], 2u);
}

TEST(SharedArena, ZeroInitialized)
{
    SharedArena arena(4096, 4096);
    for (std::size_t i = 0; i < 4096; ++i)
        ASSERT_EQ(arena.at(0)[i], std::byte{0});
}

TEST(PageTable, FaultPredicates)
{
    PageTable pt(4, PageAccess::Read);
    EXPECT_FALSE(pt.readFaults(0));
    EXPECT_TRUE(pt.writeFaults(0));
    pt.setAccess(1, PageAccess::None);
    EXPECT_TRUE(pt.readFaults(1));
    EXPECT_TRUE(pt.writeFaults(1));
    pt.setAccess(2, PageAccess::ReadWrite);
    EXPECT_FALSE(pt.writeFaults(2));
    pt.setAll(PageAccess::ReadWrite);
    EXPECT_FALSE(pt.writeFaults(1));
}

TEST(TwinStore, PageLifecycle)
{
    TwinStore twins;
    std::vector<std::byte> data(64, std::byte{7});
    twins.makePage(3, data.data(), data.size());
    EXPECT_TRUE(twins.hasPage(3));
    EXPECT_FALSE(twins.hasPage(2));
    EXPECT_EQ(twins.pageTwin(3)[10], std::byte{7});
    twins.pageTwinMut(3)[10] = std::byte{9};
    EXPECT_EQ(twins.pageTwin(3)[10], std::byte{9});
    twins.dropPage(3);
    EXPECT_FALSE(twins.hasPage(3));
}

TEST(TwinStore, RangeTwins)
{
    TwinStore twins;
    twins.makeRange(5, std::vector<std::byte>(16, std::byte{1}));
    EXPECT_TRUE(twins.hasRange(5));
    EXPECT_EQ(twins.rangeTwin(5).size(), 16u);
    twins.dropRange(5);
    EXPECT_FALSE(twins.hasRange(5));
}

TEST(Diff, EmptyWhenIdentical)
{
    std::vector<std::byte> a(128, std::byte{3});
    Diff d = Diff::create(a.data(), a.data(), 128);
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.dataBytes(), 0u);
}

TEST(Diff, CapturesChangedRuns)
{
    std::vector<std::byte> twin(64, std::byte{0});
    std::vector<std::byte> cur = twin;
    cur[4] = std::byte{1};
    cur[5] = std::byte{2};
    cur[40] = std::byte{3};
    NodeStats stats;
    Diff d = Diff::create(cur.data(), twin.data(), 64, &stats);
    ASSERT_EQ(d.diffRuns().size(), 2u);
    EXPECT_EQ(d.diffRuns()[0].offset, 4u);
    EXPECT_EQ(d.diffRuns()[0].size, 4u); // word granularity
    EXPECT_EQ(d.diffRuns()[1].offset, 40u);
    EXPECT_EQ(stats.diffsCreated, 1u);

    std::vector<std::byte> dst = twin;
    d.apply(dst.data(), &stats);
    EXPECT_EQ(dst, cur);
    EXPECT_EQ(stats.diffsApplied, 1u);
}

TEST(Diff, HandlesUnalignedTail)
{
    std::vector<std::byte> twin(10, std::byte{0});
    std::vector<std::byte> cur = twin;
    cur[9] = std::byte{5};
    Diff d = Diff::create(cur.data(), twin.data(), 10);
    std::vector<std::byte> dst = twin;
    d.apply(dst.data());
    EXPECT_EQ(dst, cur);
}

TEST(Diff, WireRoundTrip)
{
    std::vector<std::byte> twin(256, std::byte{0});
    std::vector<std::byte> cur = twin;
    for (int i : {0, 1, 2, 3, 100, 101, 255})
        cur[i] = std::byte{static_cast<unsigned char>(i)};
    Diff d = Diff::create(cur.data(), twin.data(), 256);
    WireWriter w;
    d.encode(w);
    auto bytes = w.take();
    EXPECT_EQ(bytes.size(), d.wireBytes());
    WireReader r(bytes);
    Diff back = Diff::decode(r);
    EXPECT_EQ(back, d);
}

/** Property: create+apply reconstructs the modified buffer exactly,
 *  for random modification patterns. */
class DiffProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(DiffProperty, RoundTripRandomBuffers)
{
    Rng rng(GetParam());
    const std::uint32_t len =
        64 + static_cast<std::uint32_t>(rng.below(512));
    std::vector<std::byte> twin(len);
    for (auto &b : twin)
        b = std::byte{static_cast<unsigned char>(rng.below(256))};
    std::vector<std::byte> cur = twin;
    const int nmods = 1 + static_cast<int>(rng.below(40));
    for (int i = 0; i < nmods; ++i) {
        cur[rng.below(len)] =
            std::byte{static_cast<unsigned char>(rng.below(256))};
    }
    Diff d = Diff::create(cur.data(), twin.data(), len);
    std::vector<std::byte> dst = twin;
    d.apply(dst.data());
    EXPECT_EQ(dst, cur);

    // And over the wire.
    WireWriter w;
    d.encode(w);
    auto bytes = w.take();
    WireReader r(bytes);
    Diff back = Diff::decode(r);
    std::vector<std::byte> dst2 = twin;
    back.apply(dst2.data());
    EXPECT_EQ(dst2, cur);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffProperty,
                         ::testing::Range<std::uint64_t>(0, 24));

// ---------------------------------------------------------------------
// Equivalence and property tests for the wide (64-bit) diff scan.

/** Reference scan: straight per-word byte comparison at word
 *  granularity, the seed algorithm restated as simply as possible.
 *  Returns (offset, data) pairs. */
std::vector<std::pair<std::uint32_t, std::vector<std::byte>>>
referenceScan(const std::byte *cur, const std::byte *twin,
              std::uint32_t len)
{
    std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> runs;
    const std::uint32_t words = len / 4;
    auto differs = [&](std::uint32_t w) {
        return std::memcmp(cur + w * 4, twin + w * 4, 4) != 0;
    };
    std::uint32_t w = 0;
    while (w < words) {
        if (differs(w)) {
            const std::uint32_t start = w;
            while (w < words && differs(w))
                ++w;
            runs.emplace_back(start * 4,
                              std::vector<std::byte>(cur + start * 4,
                                                     cur + w * 4));
        } else {
            ++w;
        }
    }
    const std::uint32_t tail = words * 4;
    if (tail < len && std::memcmp(cur + tail, twin + tail, len - tail)) {
        runs.emplace_back(tail,
                          std::vector<std::byte>(cur + tail, cur + len));
    }
    return runs;
}

void
expectMatchesReference(const Diff &d, const std::byte *cur,
                       const std::byte *twin, std::uint32_t len)
{
    auto ref = referenceScan(cur, twin, len);
    ASSERT_EQ(d.diffRuns().size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        const DiffRun &run = d.diffRuns()[i];
        EXPECT_EQ(run.offset, ref[i].first);
        ASSERT_EQ(run.size, ref[i].second.size());
        auto data = d.runData(run);
        EXPECT_TRUE(std::equal(data.begin(), data.end(),
                               ref[i].second.begin()));
    }
}

/** Mutation patterns the scan must not mis-coalesce or miss. */
std::vector<std::byte>
adversarialMutate(std::vector<std::byte> cur, int pattern, Rng &rng)
{
    const std::uint32_t len = static_cast<std::uint32_t>(cur.size());
    auto flip = [&](std::uint32_t i) {
        cur[i] = cur[i] ^ std::byte{0xff};
    };
    switch (pattern) {
      case 0: // every other word changed (maximal run count)
        for (std::uint32_t w = 0; w * 4 + 3 < len; w += 2)
            flip(w * 4);
        break;
      case 1: // first and last byte only
        flip(0);
        flip(len - 1);
        break;
      case 2: // everything changed
        for (std::uint32_t i = 0; i < len; ++i)
            flip(i);
        break;
      case 3: // one 8-byte-aligned block boundary straddle
        if (len >= 12)
            for (std::uint32_t i = 6; i < 10; ++i)
                flip(i);
        break;
      case 4: // random scatter
        for (int i = 0; i < 25; ++i)
            flip(static_cast<std::uint32_t>(rng.below(len)));
        break;
      case 5: // tail-only change (non-word lengths)
        flip(len - 1);
        break;
      default:
        break;
    }
    return cur;
}

class DiffScanEquivalence
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(DiffScanEquivalence, WideMatchesReferenceAndNarrow)
{
    Rng rng(GetParam() * 977 + 11);
    // Lengths deliberately include non-word multiples and tiny areas.
    const std::uint32_t len =
        1 + static_cast<std::uint32_t>(rng.below(700));
    std::vector<std::byte> twin(len);
    for (auto &b : twin)
        b = std::byte{static_cast<unsigned char>(rng.below(256))};

    for (int pattern = 0; pattern <= 6; ++pattern) {
        std::vector<std::byte> cur =
            adversarialMutate(twin, pattern, rng);
        Diff wide = Diff::create(cur.data(), twin.data(), len, nullptr,
                                 {ScanKernel::Wide, 0});
        Diff narrow = Diff::create(cur.data(), twin.data(), len, nullptr,
                                   {ScanKernel::Scalar, 0});
        Diff simd = Diff::create(cur.data(), twin.data(), len, nullptr,
                                 {ScanKernel::Simd, 0});
        // Byte-identical diffs: same runs, same payload, same wire form.
        EXPECT_EQ(wide, narrow);
        EXPECT_EQ(simd, narrow);
        expectMatchesReference(wide, cur.data(), twin.data(), len);

        // And both reconstruct the modified buffer.
        std::vector<std::byte> dst = twin;
        wide.apply(dst.data());
        EXPECT_EQ(dst, cur);

        WireWriter w;
        wide.encode(w);
        auto bytes = w.take();
        EXPECT_EQ(bytes.size(), wide.wireBytes());
        WireReader r(bytes);
        EXPECT_EQ(Diff::decode(r), wide);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffScanEquivalence,
                         ::testing::Range<std::uint64_t>(0, 16));

TEST(DiffScan, EmptyDiffOnIdenticalBuffers)
{
    for (std::uint32_t len : {0u, 1u, 3u, 4u, 7u, 64u, 4096u}) {
        std::vector<std::byte> buf(len, std::byte{0x5a});
        Diff d = Diff::create(buf.data(), buf.data(), len);
        EXPECT_TRUE(d.empty());
        EXPECT_EQ(d.wireBytes(), Diff::kHeaderBytes);
        WireWriter w;
        d.encode(w);
        auto bytes = w.take();
        EXPECT_EQ(bytes.size(), d.wireBytes());
        WireReader r(bytes);
        EXPECT_EQ(Diff::decode(r), d);
    }
}

TEST(DiffScan, StatsCountTailAsOneShortWord)
{
    NodeStats stats;
    std::vector<std::byte> buf(10, std::byte{1});
    Diff::create(buf.data(), buf.data(), 10, &stats);
    EXPECT_EQ(stats.diffWordsCompared, Diff::comparedWords(10));
    EXPECT_EQ(stats.diffWordsCompared, 3u); // 2 words + 1 short tail

    stats = NodeStats{};
    Diff::create(buf.data(), buf.data(), 8, &stats);
    EXPECT_EQ(stats.diffWordsCompared, 2u); // no tail, no extra word
}

TEST(DiffGap, CoalescesRunsAcrossSmallGaps)
{
    std::vector<std::byte> twin(64, std::byte{0});
    std::vector<std::byte> cur = twin;
    cur[0] = std::byte{1};  // word 0
    cur[12] = std::byte{2}; // word 3 (gap of 2 words)
    cur[40] = std::byte{3}; // word 10 (gap of 6 words)

    Diff exact = Diff::create(cur.data(), twin.data(), 64, nullptr,
                              {ScanKernel::Wide, 0});
    ASSERT_EQ(exact.diffRuns().size(), 3u);

    Diff gap2 = Diff::create(cur.data(), twin.data(), 64, nullptr,
                             {ScanKernel::Wide, 2});
    ASSERT_EQ(gap2.diffRuns().size(), 2u);
    EXPECT_EQ(gap2.diffRuns()[0].offset, 0u);
    EXPECT_EQ(gap2.diffRuns()[0].size, 16u); // words 0..3 incl. bridge
    EXPECT_LT(gap2.wireBytes(), exact.wireBytes() + 8);

    Diff gap16 = Diff::create(cur.data(), twin.data(), 64, nullptr,
                              {ScanKernel::Wide, 16});
    ASSERT_EQ(gap16.diffRuns().size(), 1u);

    // Coalesced diffs still reconstruct exactly (bridged bytes carry
    // the current copy's values).
    for (const Diff *d : {&exact, &gap2, &gap16}) {
        std::vector<std::byte> dst = twin;
        d->apply(dst.data());
        EXPECT_EQ(dst, cur);
    }
}

TEST(DiffGap, RandomizedCoalescedRoundTrip)
{
    Rng rng(123);
    for (int trial = 0; trial < 50; ++trial) {
        const std::uint32_t len =
            16 + static_cast<std::uint32_t>(rng.below(500));
        std::vector<std::byte> twin(len);
        for (auto &b : twin)
            b = std::byte{static_cast<unsigned char>(rng.below(256))};
        std::vector<std::byte> cur = twin;
        const int nmods = 1 + static_cast<int>(rng.below(30));
        for (int i = 0; i < nmods; ++i)
            cur[rng.below(len)] ^= std::byte{0x3c};
        const std::uint32_t gap =
            static_cast<std::uint32_t>(rng.below(8));
        Diff d = Diff::create(cur.data(), twin.data(), len, nullptr,
                              {ScanKernel::Wide, gap});
        std::vector<std::byte> dst = twin;
        d.apply(dst.data());
        EXPECT_EQ(dst, cur);

        WireWriter w;
        d.encode(w);
        auto bytes = w.take();
        WireReader r(bytes);
        EXPECT_EQ(Diff::decode(r), d);
    }
}

TEST(StampChangedWords, WideMatchesNarrowAndStampsExactly)
{
    Rng rng(7);
    const std::uint32_t len = 512;
    std::vector<std::byte> twin(len);
    for (auto &b : twin)
        b = std::byte{static_cast<unsigned char>(rng.below(256))};
    std::vector<std::byte> cur = twin;
    for (int i = 0; i < 30; ++i)
        cur[rng.below(len)] ^= std::byte{0x80};

    BlockTimestamps wide(len / 4);
    BlockTimestamps narrow(len / 4);
    const std::uint64_t value = packTs(3, 9);
    const std::uint64_t nw = stampChangedWords(wide, cur.data(),
                                               twin.data(), len, value,
                                               ScanKernel::Wide);
    const std::uint64_t nn = stampChangedWords(narrow, cur.data(),
                                               twin.data(), len, value,
                                               ScanKernel::Scalar);
    EXPECT_EQ(nw, nn);
    EXPECT_GT(nw, 0u);
    for (std::uint32_t w = 0; w < len / 4; ++w) {
        EXPECT_EQ(wide.get(w), narrow.get(w));
        const bool changed =
            std::memcmp(cur.data() + w * 4, twin.data() + w * 4, 4) != 0;
        EXPECT_EQ(wide.get(w) == value, changed);
    }
}

TEST(BlockTimestamps, CollectRunsByEqualValue)
{
    BlockTimestamps ts(8);
    ts.setRange(1, 3, 7);
    ts.set(4, 9);
    ts.set(6, 7);
    auto runs = ts.collect([](std::uint64_t t) { return t > 5; });
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0], (::dsm::TsRun{1, 3, 7}));
    EXPECT_EQ(runs[1], (::dsm::TsRun{4, 1, 9}));
    EXPECT_EQ(runs[2], (::dsm::TsRun{6, 1, 7}));
}

TEST(BlockTimestamps, PackUnpack)
{
    const std::uint64_t ts = packTs(5, 1234);
    EXPECT_EQ(tsProc(ts), 5);
    EXPECT_EQ(tsInterval(ts), 1234u);
}

TEST(DirtyBitmap, MarkScanClear)
{
    DirtyBitmap dirty(8192, 1024);
    dirty.markRange(100, 8);
    dirty.markRange(2048, 4);
    EXPECT_TRUE(dirty.pageDirty(0));
    EXPECT_FALSE(dirty.pageDirty(1));
    EXPECT_TRUE(dirty.pageDirty(2));
    auto pages = dirty.dirtyPages();
    ASSERT_EQ(pages.size(), 2u);
    EXPECT_EQ(pages[0], 0u);
    EXPECT_EQ(pages[1], 2u);

    auto runs = dirty.dirtyRunsIn(0, 1024);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].start, 25u); // block 100/4
    EXPECT_EQ(runs[0].length, 2u); // bytes 100..107

    EXPECT_EQ(dirty.countDirtyIn(0, 8192), 3u);
    dirty.clearRange(0, 1024);
    EXPECT_FALSE(dirty.pageDirty(0));
    EXPECT_TRUE(dirty.pageDirty(2));
    dirty.clearAll();
    EXPECT_TRUE(dirty.dirtyPages().empty());
}

TEST(DirtyBitmap, UnalignedRangeCoversWholeWords)
{
    DirtyBitmap dirty(4096, 4096);
    dirty.markRange(6, 1); // byte 6 -> word block 1
    EXPECT_TRUE(dirty.test(1));
    EXPECT_FALSE(dirty.test(0));
    EXPECT_FALSE(dirty.test(2));
}

TEST(RegionTable, LookupAndGranularity)
{
    RegionTable regions;
    regions.add({0, 100, 4, "a"});
    regions.add({128, 64, 8, "b"});
    EXPECT_EQ(regions.find(50)->name, "a");
    EXPECT_EQ(regions.find(100), nullptr);
    EXPECT_EQ(regions.find(128)->name, "b");
    EXPECT_EQ(regions.find(191)->name, "b");
    EXPECT_EQ(regions.find(192), nullptr);
    EXPECT_EQ(regions.blockSizeAt(130), 8u);
    EXPECT_EQ(regions.blockSizeAt(10), 4u);
    EXPECT_EQ(regions.blockSizeAt(5000), 4u);
    EXPECT_EQ(regions.count(), 2u);
}

} // namespace
} // namespace dsm
