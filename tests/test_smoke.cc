/**
 * @file
 * End-to-end smoke: SOR and SOR+ at test scale on every runtime
 * configuration must match the sequential reference bit-exactly.
 */

#include <gtest/gtest.h>

#include "driver/experiment.hh"

namespace dsm {
namespace {

class SmokeTest : public ::testing::TestWithParam<
                      std::tuple<std::string, std::string>>
{};

TEST_P(SmokeTest, MatchesSequential)
{
    const auto &[app, config_name] = GetParam();
    AppParams params = AppParams::testScale();
    ClusterConfig base;
    base.nprocs = 4;
    base.arenaBytes = 4u << 20;
    base.pageSize = 1024;

    ExperimentResult r = runExperiment(
        app, RuntimeConfig::parse(config_name), params, base,
        /*require_valid=*/false);
    EXPECT_TRUE(r.verdict.ok) << r.verdict.detail;
    EXPECT_GT(r.run.execTimeNs, 0u);
    EXPECT_GT(r.run.total.messagesSent, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SmokeTest,
    ::testing::Combine(::testing::Values("SOR", "SOR+"),
                       ::testing::Values("EC-ci", "EC-time", "EC-diff",
                                         "LRC-ci", "LRC-time",
                                         "LRC-diff")),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) + "_" +
                           std::get<1>(info.param);
        for (char &c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace dsm
