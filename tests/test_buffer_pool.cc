/**
 * @file
 * Tests for the process-wide buffer pool backing WireWriter payloads
 * and page twins.
 */

#include <gtest/gtest.h>

#include <thread>

#include "net/serde.hh"
#include "util/buffer_pool.hh"

namespace dsm {
namespace {

class BufferPoolTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        BufferPool::instance().drain();
        BufferPool::instance().setEnabled(true);
    }

    void
    TearDown() override
    {
        BufferPool::instance().drain();
        BufferPool::instance().setEnabled(true);
    }
};

TEST_F(BufferPoolTest, RecyclesCapacity)
{
    BufferPool &pool = BufferPool::instance();

    std::vector<std::byte> buf = pool.acquire(1024);
    buf.resize(777);
    const std::byte *data = buf.data();
    const std::size_t cap = buf.capacity();
    pool.release(std::move(buf));

    std::vector<std::byte> again = pool.acquire();
    EXPECT_TRUE(again.empty());
    EXPECT_EQ(again.data(), data); // same allocation came back
    EXPECT_EQ(again.capacity(), cap);

    const auto stats = pool.stats();
    EXPECT_EQ(stats.acquires, 2u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.releases, 1u);
}

TEST_F(BufferPoolTest, RejectsUselessBuffers)
{
    BufferPool &pool = BufferPool::instance();
    // Too small to be worth caching.
    pool.release(std::vector<std::byte>(8));
    EXPECT_EQ(pool.stats().cached, 0u);
    EXPECT_EQ(pool.stats().discarded, 1u);
    // No capacity at all.
    pool.release(std::vector<std::byte>{});
    EXPECT_EQ(pool.stats().cached, 0u);
}

TEST_F(BufferPoolTest, CacheIsBounded)
{
    BufferPool &pool = BufferPool::instance();
    for (std::size_t i = 0; i < BufferPool::kMaxCached + 10; ++i)
        pool.release(std::vector<std::byte>(256));
    EXPECT_EQ(pool.stats().cached, BufferPool::kMaxCached);
    EXPECT_EQ(pool.stats().discarded, 10u);
}

TEST_F(BufferPoolTest, DisabledMeansPlainAllocate)
{
    BufferPool &pool = BufferPool::instance();
    pool.setEnabled(false);
    pool.release(std::vector<std::byte>(256));
    EXPECT_EQ(pool.stats().cached, 0u);
    std::vector<std::byte> buf = pool.acquire(64);
    EXPECT_EQ(pool.stats().hits, 0u);
    pool.setEnabled(true);
}

TEST_F(BufferPoolTest, WireWriterRoundTripsThroughPool)
{
    BufferPool &pool = BufferPool::instance();
    std::vector<std::byte> taken;
    {
        WireWriter w;
        for (int i = 0; i < 100; ++i)
            w.putU64(i);
        taken = w.take();
    }
    // The writer's leftover (moved-from) buffer had no useful capacity;
    // returning the taken payload parks the real allocation.
    pool.release(std::move(taken));
    ASSERT_GE(pool.stats().cached, 1u);

    // The next writer reuses it.
    const auto hits_before = pool.stats().hits;
    WireWriter w2;
    w2.putU32(7);
    EXPECT_EQ(pool.stats().hits, hits_before + 1);
}

/** An abandoned WireWriter (error path, never taken) parks its buffer
 *  instead of leaking the capacity to the allocator. */
TEST_F(BufferPoolTest, AbandonedWriterReleasesBuffer)
{
    BufferPool &pool = BufferPool::instance();
    {
        WireWriter w;
        for (int i = 0; i < 64; ++i)
            w.putU64(i);
    }
    EXPECT_GE(pool.stats().cached, 1u);
}

/** Buffers released on a worker thread (the service thread in the
 *  producer/consumer split) spill to the global cache at the latest
 *  when the thread exits, and are acquirable from another thread. */
TEST_F(BufferPoolTest, CrossThreadRecycling)
{
    BufferPool &pool = BufferPool::instance();
    constexpr int kBuffers = 80; // > one thread-local freelist
    std::thread releaser([&] {
        for (int i = 0; i < kBuffers; ++i)
            pool.release(std::vector<std::byte>(512));
    });
    releaser.join();
    EXPECT_EQ(pool.stats().cached, static_cast<std::size_t>(kBuffers));

    std::size_t hits = 0;
    for (int i = 0; i < kBuffers; ++i) {
        std::vector<std::byte> buf = pool.acquire();
        if (buf.capacity() >= 512)
            ++hits;
        // Dropped on scope exit: this loop only counts reuse.
    }
    EXPECT_EQ(hits, static_cast<std::size_t>(kBuffers));
}

} // namespace
} // namespace dsm
