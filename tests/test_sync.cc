/**
 * @file
 * Unit tests for the synchronization layer: vector times, distributed
 * lock protocol (manager forwarding, queueing, mutual exclusion, read
 * caching), and barriers.
 */

#include <gtest/gtest.h>

#include <thread>

#include "sync/barrier_service.hh"
#include "sync/lock_service.hh"
#include "sync/vector_time.hh"
#include "time/thread_context.hh"

namespace dsm {
namespace {

TEST(VectorTime, MergeDominatesSum)
{
    VectorTime a(3), b(3);
    a[0] = 5;
    a[2] = 1;
    b[1] = 4;
    b[2] = 3;
    EXPECT_FALSE(a.dominates(b));
    EXPECT_FALSE(b.dominates(a));
    VectorTime m = a;
    m.mergeMax(b);
    EXPECT_TRUE(m.dominates(a));
    EXPECT_TRUE(m.dominates(b));
    EXPECT_EQ(m.sum(), 5u + 4u + 3u);
    EXPECT_EQ(m[2], 3u);
}

TEST(VectorTime, WireRoundTrip)
{
    VectorTime a(4);
    a[0] = 1;
    a[3] = 99;
    WireWriter w;
    a.encode(w);
    auto bytes = w.take();
    WireReader r(bytes);
    EXPECT_EQ(VectorTime::decode(r), a);
}

TEST(VectorTime, SumIsLinearExtension)
{
    // If a happens-before b (pointwise <=, strictly less somewhere),
    // then sum(a) < sum(b).
    VectorTime a(2), b(2);
    a[0] = 1;
    b[0] = 1;
    b[1] = 2;
    EXPECT_TRUE(b.dominates(a));
    EXPECT_LT(a.sum(), b.sum());
}

/** A little fixture wiring N nodes' lock/barrier services directly. */
class SyncFixture : public ::testing::Test
{
  protected:
    static constexpr int kNodes = 4;

    void
    SetUp() override
    {
        net = std::make_unique<Network>(kNodes, cm);
        for (int i = 0; i < kNodes; ++i) {
            nodes.push_back(std::make_unique<NodeBits>(*net, i));
        }
        for (auto &n : nodes) {
            NodeBits *raw = n.get();
            raw->ep.setHandler([raw](Message &msg) {
                switch (msg.type) {
                  case MsgType::LockRequest:
                  case MsgType::LockForward:
                    raw->locks.handleMessage(msg);
                    break;
                  case MsgType::BarrierArrive:
                    raw->barriers.handleMessage(msg);
                    break;
                  default:
                    FAIL() << "unexpected message";
                }
            });
            raw->ep.start();
        }
    }

    void
    TearDown() override
    {
        for (auto &n : nodes)
            n->ep.stop();
        net->shutdown();
    }

    struct NodeBits
    {
        NodeBits(Network &net, NodeId id)
            : ep(net, id, clock, stats), locks(ep), barriers(ep)
        {}

        VirtualClock clock;
        NodeStats stats;
        /** App-side counter deltas merged back by spawned threads
         *  (read by the main thread after join). */
        NodeStats appStats;
        Endpoint ep;
        LockService locks;
        BarrierService barriers;
    };

    /**
     * Spawn one application thread for node @p i, wrapped in a
     * ThreadContext exactly like Cluster::run's workers: app-side
     * counters go to a private delta (merged into appStats when the
     * thread finishes), so they never race the service thread's
     * writes to the node stats.
     */
    std::thread
    spawnNode(int i, std::function<void()> fn)
    {
        NodeBits *node = nodes[i].get();
        return std::thread([node, i, fn = std::move(fn)] {
            ThreadContext ctx;
            ctx.node = static_cast<NodeId>(i);
            ctx.clock = &node->clock;
            ThreadContext::Scope scope(&ctx);
            fn();
            node->appStats += ctx.stats;
        });
    }

    CostModel cm;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<NodeBits>> nodes;
};

TEST_F(SyncFixture, MutualExclusionUnderContention)
{
    // N threads hammer one lock; a plain int counts critical sections.
    constexpr int kIters = 50;
    int counter = 0;
    std::vector<std::thread> threads;
    for (int i = 0; i < kNodes; ++i) {
        threads.push_back(spawnNode(i, [&, i] {
            for (int k = 0; k < kIters; ++k) {
                nodes[i]->locks.acquire(7, AccessMode::Write);
                const int seen = counter;
                std::this_thread::yield();
                counter = seen + 1;
                nodes[i]->locks.release(7);
            }
        }));
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(counter, kNodes * kIters);
}

TEST_F(SyncFixture, LocalReacquireIsFree)
{
    nodes[1]->locks.acquire(3, AccessMode::Write);
    nodes[1]->locks.release(3);
    const auto sent = nodes[1]->stats.messagesSent;
    for (int i = 0; i < 10; ++i) {
        nodes[1]->locks.acquire(3, AccessMode::Write);
        nodes[1]->locks.release(3);
    }
    EXPECT_EQ(nodes[1]->stats.messagesSent, sent);
    EXPECT_GE(nodes[1]->stats.localLockHits, 10u);
}

TEST_F(SyncFixture, ManagerOwnsInitially)
{
    // Lock 2's manager is node 2: its first acquire is message-free.
    nodes[2]->locks.acquire(2, AccessMode::Write);
    nodes[2]->locks.release(2);
    EXPECT_EQ(nodes[2]->stats.messagesSent, 0u);
}

TEST_F(SyncFixture, GrantHooksCarryPayload)
{
    // Owner-side makeGrant payload reaches the requester's applyGrant.
    std::vector<std::byte> seen;
    LockHooks hooks0;
    hooks0.makeGrant = [](LockId, AccessMode, NodeId, WireReader &) {
        WireWriter w;
        w.putU32(0xfeed);
        return w.take();
    };
    nodes[0]->locks.setHooks(std::move(hooks0));

    LockHooks hooks1;
    hooks1.applyGrant = [&](LockId, AccessMode, WireReader &r) {
        WireWriter w;
        w.putU32(r.getU32());
        seen = w.take();
    };
    nodes[1]->locks.setHooks(std::move(hooks1));

    // Lock 0 is managed (and initially owned) by node 0.
    nodes[1]->locks.acquire(0, AccessMode::Write);
    nodes[1]->locks.release(0);
    ASSERT_EQ(seen.size(), 4u);
    WireReader r(seen);
    EXPECT_EQ(r.getU32(), 0xfeedu);
}

TEST_F(SyncFixture, ReadLocksCacheUntilBarrier)
{
    // Node 0 owns lock 1 after an exclusive acquire.
    nodes[1]->locks.acquire(1, AccessMode::Write);
    nodes[1]->locks.release(1);

    // First read acquire on node 2: remote; repeats: cached (free).
    nodes[2]->locks.acquire(1, AccessMode::Read);
    nodes[2]->locks.release(1);
    const auto sent = nodes[2]->stats.messagesSent;
    nodes[2]->locks.acquire(1, AccessMode::Read);
    nodes[2]->locks.release(1);
    EXPECT_EQ(nodes[2]->stats.messagesSent, sent);

    // After a barrier the cache is revalidated (the barrier's
    // post-wait action calls clearReadCaches): next read is remote.
    nodes[2]->locks.clearReadCaches();
    nodes[2]->locks.acquire(1, AccessMode::Read);
    nodes[2]->locks.release(1);
    EXPECT_GT(nodes[2]->stats.messagesSent, sent);
}

TEST_F(SyncFixture, ForwardDedupKeysOnOriginAndToken)
{
    // Regression: every endpoint numbers its calls from the same
    // counter start, so two different origins' requests routinely
    // carry EQUAL reply tokens. The owner-side forward dedup (which
    // exists so a manager's orphan replay after an outage cannot
    // double-grant) must therefore key on (origin, token) — deduping
    // on the bare token silently dropped the second origin's forward
    // and its acquire hung forever.
    nodes[1]->locks.acquire(13, AccessMode::Write); // 13 % 4 = node 1:
                                                    // manager-owned,
                                                    // message-free
    const auto forward = [&](NodeId origin, std::uint64_t token) {
        WireWriter w;
        w.putU32(13);
        w.putU8(static_cast<std::uint8_t>(AccessMode::Read));
        w.putU16(static_cast<std::uint16_t>(origin));
        w.putBlob({});
        Message msg;
        msg.src = 1; // the manager forwarding to itself-as-owner
        msg.dst = 1;
        msg.type = MsgType::LockForward;
        msg.replyToken = token;
        msg.payload = w.take();
        nodes[1]->locks.handleMessage(msg);
    };

    forward(0, 500);
    EXPECT_EQ(nodes[1]->locks.pendingRemoteCount(13), 1u);
    forward(0, 500); // true duplicate (an orphan replay): dropped
    EXPECT_EQ(nodes[1]->locks.pendingRemoteCount(13), 1u);
    forward(2, 500); // same token, DIFFERENT origin: a distinct request
    EXPECT_EQ(nodes[1]->locks.pendingRemoteCount(13), 2u);
    forward(0, 501); // same origin, new token: also distinct
    EXPECT_EQ(nodes[1]->locks.pendingRemoteCount(13), 3u);
    // The queued grants are never released: the fixture tears the
    // cluster down with the lock still held, which is exactly what we
    // want — no reply choreography, just the dedup keying.
}

TEST_F(SyncFixture, BarrierBlocksUntilAllArrive)
{
    std::atomic<int> arrived{0};
    std::atomic<int> departed{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kNodes; ++i) {
        threads.push_back(spawnNode(i, [&, i] {
            arrived.fetch_add(1);
            nodes[i]->barriers.wait(9);
            // Everyone must have arrived before anyone departs.
            EXPECT_EQ(arrived.load(), kNodes);
            departed.fetch_add(1);
        }));
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(departed.load(), kNodes);
}

TEST_F(SyncFixture, BarrierReusableAcrossGenerations)
{
    for (int round = 0; round < 3; ++round) {
        std::vector<std::thread> threads;
        for (int i = 0; i < kNodes; ++i) {
            threads.push_back(
                spawnNode(i, [&, i] { nodes[i]->barriers.wait(4); }));
        }
        for (auto &t : threads)
            t.join();
    }
    for (int i = 0; i < kNodes; ++i)
        EXPECT_EQ(nodes[i]->appStats.barriersEntered, 3u);
}

TEST_F(SyncFixture, BarrierHooksMergeAndDistribute)
{
    // Manager (node 0) sums arrival payloads and broadcasts the total.
    std::atomic<std::uint32_t> merged{0};
    BarrierHooks mgr;
    mgr.mergeArrival = [&](BarrierId, NodeId, WireReader &r) {
        merged.fetch_add(r.getU32());
    };
    mgr.makeDepart = [&](BarrierId, NodeId) {
        WireWriter w;
        w.putU32(merged.load());
        return w.take();
    };

    std::vector<std::uint32_t> got(kNodes, 0);
    for (int i = 0; i < kNodes; ++i) {
        BarrierHooks h = i == 0 ? mgr : BarrierHooks{};
        h.makeArrival = [i](BarrierId) {
            WireWriter w;
            w.putU32(1u << i);
            return w.take();
        };
        h.applyDepart = [&, i](BarrierId, WireReader &r) {
            got[i] = r.getU32();
        };
        if (i == 0) {
            h.mergeArrival = mgr.mergeArrival;
            h.makeDepart = mgr.makeDepart;
        }
        nodes[i]->barriers.setHooks(std::move(h));
    }

    std::vector<std::thread> threads;
    for (int i = 0; i < kNodes; ++i)
        threads.push_back(
            spawnNode(i, [&, i] { nodes[i]->barriers.wait(2); }));
    for (auto &t : threads)
        t.join();
    for (int i = 0; i < kNodes; ++i)
        EXPECT_EQ(got[i], 0b1111u) << "node " << i;
}

} // namespace
} // namespace dsm
