/**
 * @file
 * Unit tests for the synchronization layer: vector times, distributed
 * lock protocol (manager forwarding, queueing, mutual exclusion, read
 * caching), and barriers.
 */

#include <gtest/gtest.h>

#include <thread>

#include "net/network.hh"
#include "sync/barrier_service.hh"
#include "sync/lock_service.hh"
#include "sync/vector_time.hh"
#include "time/thread_context.hh"

namespace dsm {
namespace {

TEST(VectorTime, MergeDominatesSum)
{
    VectorTime a(3), b(3);
    a[0] = 5;
    a[2] = 1;
    b[1] = 4;
    b[2] = 3;
    EXPECT_FALSE(a.dominates(b));
    EXPECT_FALSE(b.dominates(a));
    VectorTime m = a;
    m.mergeMax(b);
    EXPECT_TRUE(m.dominates(a));
    EXPECT_TRUE(m.dominates(b));
    EXPECT_EQ(m.sum(), 5u + 4u + 3u);
    EXPECT_EQ(m[2], 3u);
}

TEST(VectorTime, WireRoundTrip)
{
    VectorTime a(4);
    a[0] = 1;
    a[3] = 99;
    WireWriter w;
    a.encode(w);
    auto bytes = w.take();
    WireReader r(bytes);
    EXPECT_EQ(VectorTime::decode(r), a);
}

TEST(VectorTime, SumIsLinearExtension)
{
    // If a happens-before b (pointwise <=, strictly less somewhere),
    // then sum(a) < sum(b).
    VectorTime a(2), b(2);
    a[0] = 1;
    b[0] = 1;
    b[1] = 2;
    EXPECT_TRUE(b.dominates(a));
    EXPECT_LT(a.sum(), b.sum());
}

/** A little fixture wiring N nodes' lock/barrier services directly. */
class SyncFixture : public ::testing::Test
{
  protected:
    static constexpr int kNodes = 4;

    void
    SetUp() override
    {
        net = std::make_unique<Network>(kNodes, cm);
        for (int i = 0; i < kNodes; ++i) {
            nodes.push_back(std::make_unique<NodeBits>(*net, i));
        }
        for (auto &n : nodes) {
            NodeBits *raw = n.get();
            raw->ep.setHandler([raw](Message &msg) {
                switch (msg.type) {
                  case MsgType::LockRequest:
                  case MsgType::LockForward:
                    raw->locks.handleMessage(msg);
                    break;
                  case MsgType::BarrierArrive:
                    raw->barriers.handleMessage(msg);
                    break;
                  default:
                    FAIL() << "unexpected message";
                }
            });
            raw->ep.start();
        }
    }

    void
    TearDown() override
    {
        for (auto &n : nodes)
            n->ep.stop();
        net->shutdown();
    }

    struct NodeBits
    {
        NodeBits(Network &net, NodeId id)
            : ep(net, id, clock, stats), locks(ep), barriers(ep)
        {}

        VirtualClock clock;
        NodeStats stats;
        /** App-side counter deltas merged back by spawned threads
         *  (read by the main thread after join). */
        NodeStats appStats;
        Endpoint ep;
        LockService locks;
        BarrierService barriers;
    };

    /**
     * Spawn one application thread for node @p i, wrapped in a
     * ThreadContext exactly like Cluster::run's workers: app-side
     * counters go to a private delta (merged into appStats when the
     * thread finishes), so they never race the service thread's
     * writes to the node stats.
     */
    std::thread
    spawnNode(int i, std::function<void()> fn)
    {
        NodeBits *node = nodes[i].get();
        return std::thread([node, i, fn = std::move(fn)] {
            ThreadContext ctx;
            ctx.node = static_cast<NodeId>(i);
            ctx.clock = &node->clock;
            ThreadContext::Scope scope(&ctx);
            fn();
            node->appStats += ctx.stats;
        });
    }

    CostModel cm;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<NodeBits>> nodes;
};

TEST_F(SyncFixture, MutualExclusionUnderContention)
{
    // N threads hammer one lock; a plain int counts critical sections.
    constexpr int kIters = 50;
    int counter = 0;
    std::vector<std::thread> threads;
    for (int i = 0; i < kNodes; ++i) {
        threads.push_back(spawnNode(i, [&, i] {
            for (int k = 0; k < kIters; ++k) {
                nodes[i]->locks.acquire(7, AccessMode::Write);
                const int seen = counter;
                std::this_thread::yield();
                counter = seen + 1;
                nodes[i]->locks.release(7);
            }
        }));
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(counter, kNodes * kIters);
}

TEST_F(SyncFixture, LocalReacquireIsFree)
{
    nodes[1]->locks.acquire(3, AccessMode::Write);
    nodes[1]->locks.release(3);
    const auto sent = nodes[1]->stats.messagesSent;
    for (int i = 0; i < 10; ++i) {
        nodes[1]->locks.acquire(3, AccessMode::Write);
        nodes[1]->locks.release(3);
    }
    EXPECT_EQ(nodes[1]->stats.messagesSent, sent);
    EXPECT_GE(nodes[1]->stats.localLockHits, 10u);
}

TEST_F(SyncFixture, ManagerOwnsInitially)
{
    // Lock 2's manager is node 2: its first acquire is message-free.
    nodes[2]->locks.acquire(2, AccessMode::Write);
    nodes[2]->locks.release(2);
    EXPECT_EQ(nodes[2]->stats.messagesSent, 0u);
}

TEST_F(SyncFixture, GrantHooksCarryPayload)
{
    // Owner-side makeGrant payload reaches the requester's applyGrant.
    std::vector<std::byte> seen;
    LockHooks hooks0;
    hooks0.makeGrant = [](LockId, AccessMode, NodeId, WireReader &) {
        WireWriter w;
        w.putU32(0xfeed);
        return w.take();
    };
    nodes[0]->locks.setHooks(std::move(hooks0));

    LockHooks hooks1;
    hooks1.applyGrant = [&](LockId, AccessMode, WireReader &r) {
        WireWriter w;
        w.putU32(r.getU32());
        seen = w.take();
    };
    nodes[1]->locks.setHooks(std::move(hooks1));

    // Lock 0 is managed (and initially owned) by node 0.
    nodes[1]->locks.acquire(0, AccessMode::Write);
    nodes[1]->locks.release(0);
    ASSERT_EQ(seen.size(), 4u);
    WireReader r(seen);
    EXPECT_EQ(r.getU32(), 0xfeedu);
}

TEST_F(SyncFixture, ReadLocksCacheUntilBarrier)
{
    // Node 0 owns lock 1 after an exclusive acquire.
    nodes[1]->locks.acquire(1, AccessMode::Write);
    nodes[1]->locks.release(1);

    // First read acquire on node 2: remote; repeats: cached (free).
    nodes[2]->locks.acquire(1, AccessMode::Read);
    nodes[2]->locks.release(1);
    const auto sent = nodes[2]->stats.messagesSent;
    nodes[2]->locks.acquire(1, AccessMode::Read);
    nodes[2]->locks.release(1);
    EXPECT_EQ(nodes[2]->stats.messagesSent, sent);

    // After a barrier the cache is revalidated (the barrier's
    // post-wait action calls clearReadCaches): next read is remote.
    nodes[2]->locks.clearReadCaches();
    nodes[2]->locks.acquire(1, AccessMode::Read);
    nodes[2]->locks.release(1);
    EXPECT_GT(nodes[2]->stats.messagesSent, sent);
}

TEST_F(SyncFixture, ForwardDedupKeysOnOriginAndToken)
{
    // Regression: every endpoint numbers its calls from the same
    // counter start, so two different origins' requests routinely
    // carry EQUAL reply tokens. The owner-side forward dedup (which
    // exists so a manager's orphan replay after an outage cannot
    // double-grant) must therefore key on (origin, token) — deduping
    // on the bare token silently dropped the second origin's forward
    // and its acquire hung forever.
    nodes[1]->locks.acquire(13, AccessMode::Write); // 13 % 4 = node 1:
                                                    // manager-owned,
                                                    // message-free
    const auto forward = [&](NodeId origin, std::uint64_t token) {
        WireWriter w;
        w.putU32(13);
        w.putU8(static_cast<std::uint8_t>(AccessMode::Read));
        w.putU16(static_cast<std::uint16_t>(origin));
        w.putBlob({});
        Message msg;
        msg.src = 1; // the manager forwarding to itself-as-owner
        msg.dst = 1;
        msg.type = MsgType::LockForward;
        msg.replyToken = token;
        msg.payload = w.take();
        nodes[1]->locks.handleMessage(msg);
    };

    forward(0, 500);
    EXPECT_EQ(nodes[1]->locks.pendingRemoteCount(13), 1u);
    forward(0, 500); // true duplicate (an orphan replay): dropped
    EXPECT_EQ(nodes[1]->locks.pendingRemoteCount(13), 1u);
    forward(2, 500); // same token, DIFFERENT origin: a distinct request
    EXPECT_EQ(nodes[1]->locks.pendingRemoteCount(13), 2u);
    forward(0, 501); // same origin, new token: also distinct
    EXPECT_EQ(nodes[1]->locks.pendingRemoteCount(13), 3u);
    // The queued grants are never released: the fixture tears the
    // cluster down with the lock still held, which is exactly what we
    // want — no reply choreography, just the dedup keying.
}

TEST_F(SyncFixture, BarrierBlocksUntilAllArrive)
{
    std::atomic<int> arrived{0};
    std::atomic<int> departed{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kNodes; ++i) {
        threads.push_back(spawnNode(i, [&, i] {
            arrived.fetch_add(1);
            nodes[i]->barriers.wait(9);
            // Everyone must have arrived before anyone departs.
            EXPECT_EQ(arrived.load(), kNodes);
            departed.fetch_add(1);
        }));
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(departed.load(), kNodes);
}

TEST_F(SyncFixture, BarrierReusableAcrossGenerations)
{
    for (int round = 0; round < 3; ++round) {
        std::vector<std::thread> threads;
        for (int i = 0; i < kNodes; ++i) {
            threads.push_back(
                spawnNode(i, [&, i] { nodes[i]->barriers.wait(4); }));
        }
        for (auto &t : threads)
            t.join();
    }
    for (int i = 0; i < kNodes; ++i)
        EXPECT_EQ(nodes[i]->appStats.barriersEntered, 3u);
}

TEST_F(SyncFixture, BarrierHooksMergeAndDistribute)
{
    // Manager (node 0) sums arrival payloads and broadcasts the total.
    std::atomic<std::uint32_t> merged{0};
    BarrierHooks mgr;
    mgr.mergeArrival = [&](BarrierId, NodeId, WireReader &r) {
        merged.fetch_add(r.getU32());
    };
    mgr.makeDepart = [&](BarrierId, NodeId) {
        WireWriter w;
        w.putU32(merged.load());
        return w.take();
    };

    std::vector<std::uint32_t> got(kNodes, 0);
    for (int i = 0; i < kNodes; ++i) {
        BarrierHooks h = i == 0 ? mgr : BarrierHooks{};
        h.makeArrival = [i](BarrierId) {
            WireWriter w;
            w.putU32(1u << i);
            return w.take();
        };
        h.applyDepart = [&, i](BarrierId, WireReader &r) {
            got[i] = r.getU32();
        };
        if (i == 0) {
            h.mergeArrival = mgr.mergeArrival;
            h.makeDepart = mgr.makeDepart;
        }
        nodes[i]->barriers.setHooks(std::move(h));
    }

    std::vector<std::thread> threads;
    for (int i = 0; i < kNodes; ++i)
        threads.push_back(
            spawnNode(i, [&, i] { nodes[i]->barriers.wait(2); }));
    for (auto &t : threads)
        t.join();
    for (int i = 0; i < kNodes; ++i)
        EXPECT_EQ(got[i], 0b1111u) << "node " << i;
}

// ---------------------------------------------------------------------
// Per-lock adaptive fairness bound (DSM_LOCK_FAIRNESS_ADAPT): each
// lock's hand-off bound seeds at 4 (no static k armed), doubles while
// local runs complete with no remote waiter queued, and halves every
// time the bound forces a remote grant.

TEST(AdaptiveFairness, SeedsGrowsAndShrinks)
{
    CostModel cm;
    Network net(2, cm);
    VirtualClock clocks[2];
    NodeStats stats[2];
    Endpoint ep0(net, 0, clocks[0], stats[0]);
    Endpoint ep1(net, 1, clocks[1], stats[1]);
    LockService locks0(ep0, /*threads_per_node=*/2,
                       /*local_handoff_bound=*/0,
                       /*adaptive_fairness=*/true);
    LockService locks1(ep1, 1, 0, true);
    ep0.setHandler([&](Message &msg) { locks0.handleMessage(msg); });
    ep1.setHandler([&](Message &msg) { locks1.handleMessage(msg); });
    ep0.start();
    ep1.start();

    // Untouched locks report the seed, never the static bound of 0.
    EXPECT_EQ(locks0.currentFairnessBound(0), 4u);

    NodeStats app;
    std::mutex appMu;
    const auto worker = [&](int node, int tid,
                            std::function<void()> fn) {
        return std::thread([&, node, tid, fn = std::move(fn)] {
            ThreadContext ctx;
            ctx.node = static_cast<NodeId>(node);
            ctx.threadId = tid;
            ctx.clock = node == 0 ? &clocks[0] : &clocks[1];
            ThreadContext::Scope scope(&ctx);
            fn();
            std::lock_guard<std::mutex> g(appMu);
            app += ctx.stats;
        });
    };

    // Phase 1 — grow: two node-0 threads ping-pong with no remote
    // interest. Every run of hand-offs that ends at a free release
    // doubles the bound (4 -> 8 -> ... -> 64 cap).
    {
        std::vector<std::thread> ts;
        for (int tid = 0; tid < 2; ++tid) {
            ts.push_back(worker(0, tid, [&] {
                for (int k = 0; k < 60; ++k) {
                    locks0.acquire(0, AccessMode::Write);
                    std::this_thread::yield();
                    locks0.release(0);
                }
            }));
        }
        for (auto &t : ts)
            t.join();
    }
    const std::uint32_t grown = locks0.currentFairnessBound(0);
    EXPECT_GT(grown, 4u);
    EXPECT_LE(grown, 64u);
    {
        std::lock_guard<std::mutex> g(appMu);
        EXPECT_GE(app.fairnessBoundGrows, 1u);
        EXPECT_EQ(app.fairnessBoundShrinks, 0u);
    }

    // Phase 2 — shrink, on a fresh lock still at the seed bound of 4:
    // a node-1 contender repeatedly queues at the owner while the
    // node-0 pair keeps hand-offs running. Whenever four consecutive
    // hand-offs run with the remote queued, the forced grant halves
    // the bound.
    {
        std::vector<std::thread> ts;
        for (int tid = 0; tid < 2; ++tid) {
            ts.push_back(worker(0, tid, [&] {
                for (int k = 0; k < 300; ++k) {
                    locks0.acquire(2, AccessMode::Write);
                    std::this_thread::yield();
                    locks0.release(2);
                }
            }));
        }
        ts.push_back(worker(1, 0, [&] {
            for (int k = 0; k < 30; ++k) {
                locks1.acquire(2, AccessMode::Write);
                locks1.release(2);
            }
        }));
        for (auto &t : ts)
            t.join();
    }
    {
        std::lock_guard<std::mutex> g(appMu);
        EXPECT_GE(app.fairnessBoundShrinks, 1u);
        EXPECT_GE(app.remoteHandoffsForced, 1u);
    }
    const std::uint32_t settled = locks0.currentFairnessBound(2);
    EXPECT_GE(settled, 1u);
    EXPECT_LE(settled, 64u);

    ep0.stop();
    ep1.stop();
    net.shutdown();
}

// With adaptiveness off, the per-lock view is just the static k.
TEST(AdaptiveFairness, StaticBoundReportedWhenOff)
{
    CostModel cm;
    Network net(1, cm);
    VirtualClock clock;
    NodeStats stats;
    Endpoint ep(net, 0, clock, stats);
    LockService locks(ep, 1, /*local_handoff_bound=*/7, false);
    EXPECT_EQ(locks.currentFairnessBound(9), 7u);
    net.shutdown();
}

} // namespace
} // namespace dsm
