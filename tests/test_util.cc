/**
 * @file
 * Unit tests for the util layer: run-length helpers, deterministic
 * RNG, statistics counters.
 */

#include <gtest/gtest.h>

#include "util/rle.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace dsm {
namespace {

TEST(Rle, CollectRunsEmpty)
{
    auto runs = collectRuns(0, [](std::uint32_t) { return true; });
    EXPECT_TRUE(runs.empty());
}

TEST(Rle, CollectRunsAll)
{
    auto runs = collectRuns(10, [](std::uint32_t) { return true; });
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0], (::dsm::Run{0, 10}));
}

TEST(Rle, CollectRunsAlternating)
{
    auto runs = collectRuns(6, [](std::uint32_t i) { return i % 2 == 0; });
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0], (::dsm::Run{0, 1}));
    EXPECT_EQ(runs[1], (::dsm::Run{2, 1}));
    EXPECT_EQ(runs[2], (::dsm::Run{4, 1}));
}

TEST(Rle, CollectRunsBlocks)
{
    std::vector<bool> bits = {false, true, true, false, true, true,
                              true,  false};
    auto runs = collectRuns(static_cast<std::uint32_t>(bits.size()),
                            [&](std::uint32_t i) { return bits[i]; });
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0], (::dsm::Run{1, 2}));
    EXPECT_EQ(runs[1], (::dsm::Run{4, 3}));
}

TEST(Rle, ValueRunsSplitOnValueChange)
{
    std::vector<std::uint64_t> ts = {0, 5, 5, 7, 7, 7, 0, 5};
    auto runs = collectValueRuns(ts, [](std::uint64_t v) { return v != 0; });
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0].first, (::dsm::Run{1, 2}));
    EXPECT_EQ(runs[0].second, 5u);
    EXPECT_EQ(runs[1].first, (::dsm::Run{3, 3}));
    EXPECT_EQ(runs[1].second, 7u);
    EXPECT_EQ(runs[2].first, (::dsm::Run{7, 1}));
}

TEST(Rle, NormalizeMergesOverlaps)
{
    auto out = normalizeRuns({{10, 5}, {0, 3}, {12, 6}, {3, 2}});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], (::dsm::Run{0, 5}));
    EXPECT_EQ(out[1], (::dsm::Run{10, 8}));
}

TEST(Rle, Coverage)
{
    EXPECT_EQ(runsCoverage({{0, 3}, {10, 7}}), 10u);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Stats, AccumulateAndItems)
{
    NodeStats a, b;
    a.messagesSent = 3;
    a.diffsCreated = 2;
    b.messagesSent = 4;
    b.tsWordsScanned = 9;
    a += b;
    EXPECT_EQ(a.messagesSent, 7u);
    EXPECT_EQ(a.diffsCreated, 2u);
    EXPECT_EQ(a.tsWordsScanned, 9u);

    bool found = false;
    for (const auto &[name, value] : a.items()) {
        if (name == "messagesSent") {
            EXPECT_EQ(value, 7u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Stats, MaxLocalHandoffRunMergesAsMax)
{
    // A high-water mark, not a volume: folding per-thread deltas (or
    // per-node stats into a cluster total) must take the max — summing
    // would report a run length no thread ever observed.
    NodeStats a, b;
    a.maxLocalHandoffRun = 7;
    a.intraNodeLockHandoffs = 10;
    b.maxLocalHandoffRun = 4;
    b.intraNodeLockHandoffs = 5;
    a += b;
    EXPECT_EQ(a.maxLocalHandoffRun, 7u);
    EXPECT_EQ(a.intraNodeLockHandoffs, 15u);

    NodeStats c;
    c.maxLocalHandoffRun = 11;
    a += c;
    EXPECT_EQ(a.maxLocalHandoffRun, 11u);
}

TEST(Stats, ToStringSkipsZeros)
{
    NodeStats s;
    s.pageFaults = 5;
    const std::string str = s.toString();
    EXPECT_NE(str.find("pageFaults=5"), std::string::npos);
    EXPECT_EQ(str.find("messagesSent"), std::string::npos);
}

} // namespace
} // namespace dsm
