/**
 * @file
 * The shared SPMD conformance kernels — a halo-exchange stencil, a
 * distributed task queue, and a migratory counter ring (the Table 3
 * sharing patterns in miniature). Every kernel is integer-valued,
 * partitioned over *workers* (node x thread), and
 * schedule-independent, so its final shared state is bit-exact across
 * protocols, policies, and — since the crash-tolerance PR — across
 * chaos kills and message drops. test_protocol_conformance.cc runs
 * them across protocol legs; test_checkpoint.cc runs them against
 * the fault-injection and checkpoint/recovery machinery.
 */

#ifndef DSM_TESTS_CONFORMANCE_KERNELS_HH
#define DSM_TESTS_CONFORMANCE_KERNELS_HH

#include <cstddef>
#include <vector>

#include "core/cluster.hh"
#include "core/shared_array.hh"

namespace dsm {
namespace kernels {

constexpr LockId kQueueLock = 1;
constexpr LockId kPayloadLock = 2;
constexpr LockId kRingLock = 3;
constexpr LockId kBandLockBase = 10;

inline bool
isEc(Runtime &rt)
{
    return rt.clusterConfig().runtime.model == Model::EC;
}

// ---------------------------------------------------------------------
// Kernel 1: halo-exchange stencil (the SOR pattern). Each node owns a
// band of an int64 grid; per step it reads the neighbour edge cells
// under their band locks, then rewrites its band under its own lock.

constexpr int kCells = 768;
constexpr int kSteps = 8;

inline std::size_t
stencilBytes()
{
    return std::size_t{kCells} * sizeof(std::int64_t);
}

inline void
stencilKernel(Runtime &rt)
{
    const bool ec = isEc(rt);
    const int np = rt.nworkers();
    const int self = rt.worker();
    const int lo = self * kCells / np;
    const int hi = (self + 1) * kCells / np;
    auto band_lock = [](int p) {
        return static_cast<LockId>(kBandLockBase + p);
    };

    auto grid = SharedArray<std::int64_t>::alloc(rt, kCells, 4, "grid");
    if (ec) {
        for (int p = 0; p < np; ++p) {
            const int plo = p * kCells / np;
            const int phi = (p + 1) * kCells / np;
            rt.bindLock(band_lock(p), {grid.range(plo, phi - plo)});
        }
    }
    {
        std::vector<std::int64_t> init(kCells);
        for (int i = 0; i < kCells; ++i)
            init[i] = (i * 37) % 1001 - 500;
        rt.initBuf(grid.base(), init.data(), kCells);
    }
    BarrierId barrier = 0;
    rt.barrier(barrier++);

    std::vector<std::int64_t> band(hi - lo + 2);
    for (int step = 0; step < kSteps; ++step) {
        // Phase A: read the halo (the previous step's values — a
        // barrier below separates it from this step's writes).
        std::int64_t left = 0, right = 0;
        if (self > 0) {
            if (ec)
                rt.acquire(band_lock(self - 1), AccessMode::Read);
            left = grid.get(lo - 1);
            if (ec)
                rt.release(band_lock(self - 1));
        }
        if (self < np - 1) {
            if (ec)
                rt.acquire(band_lock(self + 1), AccessMode::Read);
            right = grid.get(hi);
            if (ec)
                rt.release(band_lock(self + 1));
        }
        grid.load(lo, band.data() + 1, hi - lo);
        band[0] = left;
        band[hi - lo + 1] = right;
        rt.barrier(barrier++);

        // Phase B: rewrite the band under the band lock.
        std::vector<std::int64_t> next(hi - lo);
        for (int i = 0; i < hi - lo; ++i) {
            next[i] = band[i] + band[i + 1] - (band[i + 2] >> 1) +
                      step;
        }
        rt.chargeWork(hi - lo);
        if (ec)
            rt.acquire(band_lock(self), AccessMode::Write);
        grid.store(lo, next.data(), hi - lo);
        if (ec)
            rt.release(band_lock(self));
        rt.barrier(barrier++);
    }

    // Node 0 collects the whole grid through the protocol.
    if (rt.worker() == 0) {
        for (int p = 0; p < np; ++p) {
            if (ec) {
                rt.acquire(band_lock(p), AccessMode::Read);
                rt.release(band_lock(p));
            }
        }
        for (int i = 0; i < kCells; ++i)
            grid.get(i);
    }
    rt.barrier(barrier++);
}

// ---------------------------------------------------------------------
// Kernel 2: distributed task queue (the Quicksort pattern). Workers
// pull jobs from a lock-protected queue and post deterministic results;
// which worker runs which job varies by schedule, the results do not.

constexpr int kJobs = 40;
constexpr int kPayloadWords = 32;

inline std::size_t
taskQueueBytes()
{
    return (1 + kJobs + std::size_t{kJobs} * kPayloadWords) *
           sizeof(std::int64_t);
}

inline void
taskQueueKernel(Runtime &rt)
{
    const bool ec = isEc(rt);
    auto queue =
        SharedArray<std::int64_t>::alloc(rt, 1 + kJobs, 4, "queue");
    auto payload = SharedArray<std::int64_t>::alloc(
        rt, std::size_t{kJobs} * kPayloadWords, 4, "payload");
    if (ec) {
        rt.bindLock(kQueueLock, {queue.wholeRange()});
        rt.bindLock(kPayloadLock, {payload.wholeRange()});
    }
    rt.barrier(0);

    // Node 0 publishes every job's payload under the payload lock.
    if (rt.worker() == 0) {
        if (ec)
            rt.acquire(kPayloadLock, AccessMode::Write);
        std::vector<std::int64_t> words(kPayloadWords);
        for (int j = 0; j < kJobs; ++j) {
            for (int w = 0; w < kPayloadWords; ++w)
                words[w] = j * 1000 + w * w;
            payload.store(std::size_t{static_cast<std::size_t>(j)} *
                              kPayloadWords,
                          words.data(), kPayloadWords);
        }
        if (ec)
            rt.release(kPayloadLock);
    }
    rt.barrier(1);

    for (;;) {
        rt.acquire(kQueueLock, AccessMode::Write);
        const std::int64_t job = queue.get(0);
        if (job < kJobs)
            queue.set(0, job + 1);
        rt.release(kQueueLock);
        if (job >= kJobs)
            break;

        if (ec)
            rt.acquire(kPayloadLock, AccessMode::Read);
        std::int64_t sum = 0;
        for (int w = 0; w < kPayloadWords; ++w)
            sum += payload.get(job * kPayloadWords + w);
        if (ec)
            rt.release(kPayloadLock);
        rt.chargeWork(kPayloadWords);

        rt.acquire(kQueueLock, AccessMode::Write);
        queue.set(1 + job, sum * 3 - job);
        rt.release(kQueueLock);
    }
    rt.barrier(2);

    if (rt.worker() == 0) {
        if (ec) {
            rt.acquire(kQueueLock, AccessMode::Read);
            rt.release(kQueueLock);
            rt.acquire(kPayloadLock, AccessMode::Read);
            rt.release(kPayloadLock);
        }
        for (std::size_t i = 0; i < queue.size(); ++i)
            queue.get(i);
        for (std::size_t i = 0; i < payload.size(); ++i)
            payload.get(i);
    }
    rt.barrier(3);
}

// ---------------------------------------------------------------------
// Kernel 3: migratory counter ring (the IS bucket pattern — the
// table3-style lock-serialized loop). One node per round increments
// every slot under the ring lock; everyone asserts the running total.

constexpr int kSlots = 96;
constexpr int kRounds = 12;

inline std::size_t
ringBytes()
{
    return std::size_t{kSlots} * sizeof(std::int64_t);
}

inline void
ringKernel(Runtime &rt)
{
    const bool ec = isEc(rt);
    auto slots = SharedArray<std::int64_t>::alloc(rt, kSlots, 4, "ring");
    if (ec)
        rt.bindLock(kRingLock, {slots.wholeRange()});
    rt.barrier(0);

    for (int round = 0; round < kRounds; ++round) {
        rt.acquire(kRingLock, AccessMode::Write);
        if (round % rt.nworkers() == rt.worker()) {
            for (int i = 0; i < kSlots; ++i)
                slots.set(i, slots.get(i) + i + round);
        }
        rt.release(kRingLock);
        rt.barrier(1 + round);
    }

    if (rt.worker() == 0) {
        if (ec) {
            rt.acquire(kRingLock, AccessMode::Read);
            rt.release(kRingLock);
        }
        for (int i = 0; i < kSlots; ++i)
            slots.get(i);
    }
    rt.barrier(100);
}

} // namespace kernels
} // namespace dsm

#endif // DSM_TESTS_CONFORMANCE_KERNELS_HH
