/**
 * @file
 * Property tests for the comparison-scan kernels (mem/wide_scan.hh):
 * the Scalar (seed), Wide (memcmp-chunked) and Simd (AVX2/NEON with
 * runtime dispatch) kernels must return identical results for
 * findDiffWord, findSameWord and the single-pass run scan, over
 * random page/twin pairs at every alignment, odd tail lengths, and
 * densities from a single flipped bit to fully changed pages.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "mem/diff.hh"
#include "mem/wide_scan.hh"
#include "util/rng.hh"

namespace dsm {
namespace {

constexpr ScanKernel kKernels[] = {ScanKernel::Scalar, ScanKernel::Wide,
                                   ScanKernel::Simd};

struct Pair
{
    /** Over-allocated backing stores so the scan region can start at
     *  any byte offset (SIMD loads must not care about alignment). */
    std::vector<std::byte> curBuf;
    std::vector<std::byte> twinBuf;
    std::uint32_t offset = 0;
    std::uint32_t words = 0;

    const std::byte *cur() const { return curBuf.data() + offset; }
    const std::byte *twin() const { return twinBuf.data() + offset; }
};

Pair
makePair(Rng &rng, std::uint32_t words, std::uint32_t offset,
         int density_percent)
{
    Pair p;
    p.offset = offset;
    p.words = words;
    const std::size_t bytes =
        std::size_t{words} * kScanWordBytes + offset + 64;
    p.twinBuf.resize(bytes);
    for (auto &b : p.twinBuf)
        b = std::byte{static_cast<unsigned char>(rng.below(256))};
    p.curBuf = p.twinBuf;
    for (std::uint32_t w = 0; w < words; ++w) {
        if (static_cast<int>(rng.below(100)) < density_percent) {
            // Flip one byte of the word (sometimes the high one, so
            // byte-order bugs would show).
            const std::uint32_t byte =
                offset + w * kScanWordBytes +
                static_cast<std::uint32_t>(rng.below(kScanWordBytes));
            p.curBuf[byte] ^= std::byte{
                static_cast<unsigned char>(1 + rng.below(255))};
        }
    }
    return p;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
runsOf(const Pair &p, ScanKernel kernel)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
    scanChangedRuns(p.cur(), p.twin(), p.words, kernel,
                    [&](std::uint32_t w, std::uint32_t e) {
                        runs.emplace_back(w, e);
                    });
    return runs;
}

/** Reference: per-word memcmp, straight from the definition. */
std::vector<std::pair<std::uint32_t, std::uint32_t>>
referenceRuns(const Pair &p)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
    std::uint32_t w = 0;
    while (w < p.words) {
        if (!scanWordDiffers(p.cur(), p.twin(), w)) {
            ++w;
            continue;
        }
        std::uint32_t e = w;
        while (e < p.words && scanWordDiffers(p.cur(), p.twin(), e))
            ++e;
        runs.emplace_back(w, e);
        w = e;
    }
    return runs;
}

TEST(WideScan, KernelsAgreeOnRandomPairs)
{
    Rng rng(20260730);
    for (int trial = 0; trial < 60; ++trial) {
        const std::uint32_t words =
            1 + static_cast<std::uint32_t>(rng.below(1400));
        const std::uint32_t offset =
            static_cast<std::uint32_t>(rng.below(16));
        const int density = static_cast<int>(rng.below(101));
        const Pair p = makePair(rng, words, offset, density);

        const auto ref = referenceRuns(p);
        for (ScanKernel k : kKernels) {
            EXPECT_EQ(runsOf(p, k), ref)
                << "kernel " << toString(k) << " words=" << words
                << " offset=" << offset << " density=" << density;
        }

        // findDiffWord / findSameWord from a handful of random starts.
        for (int probe = 0; probe < 8; ++probe) {
            const std::uint32_t from =
                static_cast<std::uint32_t>(rng.below(p.words + 1));
            const std::uint32_t d_ref = findDiffWord(
                p.cur(), p.twin(), from, p.words, ScanKernel::Scalar);
            const std::uint32_t s_ref = findSameWord(
                p.cur(), p.twin(), from, p.words, ScanKernel::Scalar);
            for (ScanKernel k : kKernels) {
                EXPECT_EQ(findDiffWord(p.cur(), p.twin(), from, p.words,
                                       k),
                          d_ref)
                    << toString(k) << " from=" << from;
                EXPECT_EQ(findSameWord(p.cur(), p.twin(), from, p.words,
                                       k),
                          s_ref)
                    << toString(k) << " from=" << from;
            }
        }
    }
}

TEST(WideScan, EdgeShapes)
{
    Rng rng(7);
    // All-equal, all-different, single word, boundary-straddling runs
    // around every multiple of the 8-word SIMD chunk.
    for (std::uint32_t words : {1u, 2u, 7u, 8u, 9u, 31u, 32u, 33u,
                                63u, 64u, 65u, 1024u}) {
        Pair same = makePair(rng, words, 3, 0);
        Pair all = makePair(rng, words, 5, 100);
        for (ScanKernel k : kKernels) {
            EXPECT_TRUE(runsOf(same, k).empty());
            const auto runs = runsOf(all, k);
            ASSERT_EQ(runs.size(), 1u);
            EXPECT_EQ(runs[0], (std::pair<std::uint32_t,
                                          std::uint32_t>{0, words}));
        }
        // One changed word at every chunk-relative position.
        for (std::uint32_t pos : {0u, 1u, 7u, words - 1}) {
            if (pos >= words)
                continue;
            Pair p = makePair(rng, words, 1, 0);
            p.curBuf[p.offset + pos * kScanWordBytes] ^= std::byte{0x40};
            const auto ref = referenceRuns(p);
            for (ScanKernel k : kKernels)
                EXPECT_EQ(runsOf(p, k), ref) << toString(k);
        }
    }
}

TEST(WideScan, CleanSkipStrideBoundaries)
{
    // The AVX2 run scan skips clean memory 512 bytes (128 words) per
    // iteration. Single flipped words placed exactly at, just before
    // and just after every 128-word stride boundary — plus short runs
    // straddling a boundary — must come out identical to the scalar
    // walk, for region lengths around multiples of the stride (so the
    // stride loop ends at every possible remainder).
    Rng rng(512);
    for (std::uint32_t words :
         {127u, 128u, 129u, 255u, 256u, 257u, 383u, 384u, 385u, 1023u,
          1024u, 1025u, 1151u}) {
        for (std::uint32_t pos :
             {0u, 1u, 126u, 127u, 128u, 129u, 255u, 256u, 257u, 511u,
              512u, 513u, 1023u, 1024u, words - 1}) {
            if (pos >= words)
                continue;
            Pair p = makePair(rng, words, 2, 0);
            p.curBuf[p.offset + pos * kScanWordBytes + 1] ^=
                std::byte{0x11};
            const auto ref = referenceRuns(p);
            for (ScanKernel k : kKernels) {
                EXPECT_EQ(runsOf(p, k), ref)
                    << toString(k) << " words=" << words
                    << " pos=" << pos;
                EXPECT_EQ(findDiffWord(p.cur(), p.twin(), 0, words, k),
                          pos)
                    << toString(k) << " words=" << words
                    << " pos=" << pos;
            }
        }
        // A short run straddling each stride boundary inside the
        // region (clean 512-byte blocks on both sides).
        for (std::uint32_t boundary = 128; boundary + 2 <= words;
             boundary += 128) {
            Pair p = makePair(rng, words, 6, 0);
            for (std::uint32_t w = boundary - 2; w < boundary + 2; ++w)
                p.curBuf[p.offset + w * kScanWordBytes] ^=
                    std::byte{0x22};
            const auto ref = referenceRuns(p);
            ASSERT_EQ(ref.size(), 1u);
            for (ScanKernel k : kKernels) {
                EXPECT_EQ(runsOf(p, k), ref)
                    << toString(k) << " words=" << words
                    << " boundary=" << boundary;
            }
        }
    }
}

TEST(WideScan, DiffCreateIdenticalAcrossKernels)
{
    Rng rng(99);
    // Full Diff::create equality, including non-word tails and gap
    // coalescing, across kernels — the four runtime scan sites all
    // reduce to this traversal.
    for (int trial = 0; trial < 40; ++trial) {
        const std::uint32_t len =
            1 + static_cast<std::uint32_t>(rng.below(5000));
        std::vector<std::byte> twin(len);
        for (auto &b : twin)
            b = std::byte{static_cast<unsigned char>(rng.below(256))};
        std::vector<std::byte> cur = twin;
        const int nmods = static_cast<int>(rng.below(200));
        for (int i = 0; i < nmods; ++i)
            cur[rng.below(len)] ^= std::byte{0x11};
        const std::uint32_t gap =
            static_cast<std::uint32_t>(rng.below(4));

        const Diff scalar = Diff::create(cur.data(), twin.data(), len,
                                         nullptr,
                                         {ScanKernel::Scalar, gap});
        const Diff wide = Diff::create(cur.data(), twin.data(), len,
                                       nullptr, {ScanKernel::Wide, gap});
        const Diff simd = Diff::create(cur.data(), twin.data(), len,
                                       nullptr, {ScanKernel::Simd, gap});
        EXPECT_EQ(wide, scalar);
        EXPECT_EQ(simd, scalar);

        std::vector<std::byte> dst = twin;
        simd.apply(dst.data());
        EXPECT_EQ(dst, cur);
    }
}

TEST(WideScan, DispatchReportsKernel)
{
    // bestScanKernel honours the env pins (the CI fallback legs) and
    // otherwise never hands out Scalar.
    const ScanKernel best = bestScanKernel();
    const char *wide_env = std::getenv("DSM_WIDE_SCAN");
    const char *simd_env = std::getenv("DSM_SIMD");
    if (wide_env && std::atoi(wide_env) == 0)
        EXPECT_EQ(best, ScanKernel::Scalar);
    else if (simd_env && std::atoi(simd_env) == 0)
        EXPECT_EQ(best, ScanKernel::Wide);
    else
        EXPECT_NE(best, ScanKernel::Scalar);
    EXPECT_STREQ(toString(ScanKernel::Scalar), "scalar");
    EXPECT_STREQ(toString(ScanKernel::Wide), "wide");
    EXPECT_STREQ(toString(ScanKernel::Simd), "simd");
}

} // namespace
} // namespace dsm
