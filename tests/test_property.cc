/**
 * @file
 * Property tests sweeping the whole configuration space: a randomized
 * "chaos counter" workload whose invariant (every increment survives)
 * must hold under every model x trapping x collection combination,
 * several page sizes, random schedules, and an unreliable network.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "core/cluster.hh"
#include "core/page_home.hh"
#include "core/shared_array.hh"
#include "util/rng.hh"

namespace dsm {
namespace {

struct ChaosCase
{
    std::string config;
    std::size_t pageSize;
    std::uint64_t seed;
    std::uint64_t lossEveryNth;
    bool homeBased = false;
};

/** Nightly-stress knobs: DSM_CHAOS_SEED offsets every case's seed so
 *  repeated CI iterations explore fresh schedules, and DSM_HOME_MIG
 *  overrides the home-migration threshold (the nightly job sweeps the
 *  4-8 range that exposed the PR 4 lost-update window). */
std::uint64_t
chaosEnvU64(const char *name, std::uint64_t fallback)
{
    if (const char *v = std::getenv(name))
        return std::strtoull(v, nullptr, 10);
    return fallback;
}

std::string
caseName(const ChaosCase &c)
{
    std::string n = c.config + (c.homeBased ? "_home" : "") + "_p" +
                    std::to_string(c.pageSize) + "_s" +
                    std::to_string(c.seed) +
                    (c.lossEveryNth ? "_lossy" : "");
    for (char &ch : n) {
        if (ch == '-')
            ch = '_';
    }
    return n;
}

class ChaosCounter : public ::testing::TestWithParam<ChaosCase>
{};

/**
 * K counter arrays, each protected by (and, under EC, bound to) a
 * lock. Every node performs R rounds; each round picks a pseudo-random
 * lock, increments a pseudo-random slot of its array, and occasionally
 * hits a barrier. Finally every slot's value must equal the number of
 * increments applied to it, which each node tallied locally.
 */
TEST_P(ChaosCounter, NoLostUpdates)
{
    const ChaosCase &c = GetParam();
    constexpr int kLocks = 5;
    constexpr int kSlots = 24;
    constexpr int kRounds = 60;
    const int nprocs = 4;
    const std::uint64_t seed =
        c.seed + 1000 * chaosEnvU64("DSM_CHAOS_SEED", 0);

    ClusterConfig cc;
    cc.nprocs = nprocs;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = c.pageSize;
    cc.runtime = RuntimeConfig::parse(c.config);
    cc.lossEveryNth = c.lossEveryNth;
    cc.homeBasedLrc = c.homeBased;
    // Aggressive migration so home hand-offs happen mid-chaos
    // (nightly stress sweeps DSM_HOME_MIG over 4-8).
    cc.homeMigrateThreshold =
        c.homeBased
            ? static_cast<std::uint32_t>(chaosEnvU64("DSM_HOME_MIG", 6))
            : 0;
    Cluster cluster(cc);

    // Expected tallies are deterministic given the seeds. Workers,
    // not nodes: under DSM_THREADS > 1 every node runs several chaos
    // workers, which makes this the intra-node mixed-lock stressor.
    std::vector<std::uint64_t> expected(kLocks * kSlots, 0);
    for (int p = 0; p < cluster.nworkers(); ++p) {
        Rng rng(seed * 977 + p);
        for (int r = 0; r < kRounds; ++r) {
            const int lock = static_cast<int>(rng.below(kLocks));
            const int slot = static_cast<int>(rng.below(kSlots));
            expected[lock * kSlots + slot]++;
            rng.below(7); // mirrors the barrier dice below
        }
    }

    RunResult result = cluster.run([&](Runtime &rt) {
        const bool ec = rt.clusterConfig().runtime.model == Model::EC;
        std::vector<SharedArray<std::uint64_t>> arrays;
        for (int l = 0; l < kLocks; ++l) {
            arrays.push_back(SharedArray<std::uint64_t>::alloc(
                rt, kSlots, 4, "chaos"));
            if (ec)
                rt.bindLock(100 + l, {arrays.back().wholeRange()});
        }
        rt.barrier(0);

        Rng rng(seed * 977 + rt.worker());
        BarrierId sync_round = 0;
        int since_barrier = 0;
        for (int r = 0; r < kRounds; ++r) {
            const int lock = static_cast<int>(rng.below(kLocks));
            const int slot = static_cast<int>(rng.below(kSlots));
            rt.acquire(100 + lock, AccessMode::Write);
            arrays[lock].set(slot, arrays[lock].get(slot) + 1);
            rt.release(100 + lock);
            // Occasional barriers, decided identically on every node
            // per round index... each node rolls its own dice; barriers
            // must be collective, so use the round index instead.
            rng.below(7);
            if (++since_barrier == 10) {
                rt.barrier(1 + sync_round++);
                since_barrier = 0;
            }
        }
        while (sync_round < kRounds / 10)
            rt.barrier(1 + sync_round++);
        rt.barrier(900);

        // Worker 0 (on node 0) collects every array via the protocol.
        if (rt.worker() == 0) {
            for (int l = 0; l < kLocks; ++l) {
                if (ec) {
                    rt.acquire(100 + l, AccessMode::Read);
                    rt.release(100 + l);
                }
                for (int s = 0; s < kSlots; ++s)
                    arrays[l].get(s);
            }
        }
        rt.barrier(901);
    });

    for (int l = 0; l < kLocks; ++l) {
        for (int s = 0; s < kSlots; ++s) {
            std::uint64_t got;
            std::memcpy(&got,
                        cluster.memory(0, (static_cast<GlobalAddr>(l) *
                                               kSlots +
                                           s) *
                                              8),
                        8);
            ASSERT_EQ(got, expected[l * kSlots + s])
                << "lock " << l << " slot " << s;
        }
    }

    if (c.lossEveryNth) {
        EXPECT_GT(result.total.retransmissions, 0u)
            << "lossy run should have exercised retransmission";
    }
}

std::vector<ChaosCase>
chaosCases()
{
    std::vector<ChaosCase> cases;
    for (const RuntimeConfig &config : RuntimeConfig::all()) {
        for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
            cases.push_back({config.name(), 1024, seed, 0});
        }
        // Cross-page behaviour and the lossy network, one seed each.
        cases.push_back({config.name(), 256, 7, 0});
        cases.push_back({config.name(), 1024, 11, 10});
    }
    // The home-based LRC variant, with migrations mid-run.
    for (std::uint64_t seed : {1ull, 2ull, 3ull})
        cases.push_back({"LRC-diff", 1024, seed, 0, true});
    cases.push_back({"LRC-diff", 256, 7, 0, true});
    cases.push_back({"LRC-diff", 1024, 11, 10, true});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChaosCounter,
                         ::testing::ValuesIn(chaosCases()),
                         [](const auto &info) {
                             return caseName(info.param);
                         });

/**
 * Homeless vs home-based diff application: a randomized multi-writer
 * page history — causally ordered rounds of 1-3 concurrent writers
 * touching disjoint words, with byte-granularity (non-word-aligned)
 * writes and occasional gap-coalesced diffs on single-writer rounds —
 * must converge to the same page bytes whether the diffs are applied
 * in happens-before (sum) order, as the homeless protocol does after
 * collecting a diff chain, or in an adversarially shuffled arrival
 * order through the home's sum-guarded in-place application.
 */
TEST(HomeDiffApplication, ConvergesWithHomelessOrder)
{
    constexpr std::uint32_t kPageBytes = 512;
    constexpr std::uint32_t kPageWords = kPageBytes / 4;

    for (std::uint64_t trial = 0; trial < 60; ++trial) {
        Rng rng(0xd1f5ull * 131 + trial);

        std::vector<std::byte> truth(kPageBytes);
        for (auto &b : truth)
            b = static_cast<std::byte>(rng.below(256));
        const std::vector<std::byte> base = truth;

        struct HistoryDiff
        {
            Diff diff;
            std::uint64_t vtSum;
            std::uint64_t order; ///< tiebreak within equal sums
        };
        std::vector<HistoryDiff> history;

        const int rounds = static_cast<int>(rng.range(2, 6));
        for (int round = 0; round < rounds; ++round) {
            const std::vector<std::byte> twin = truth;
            const int writers = static_cast<int>(rng.range(1, 3));
            // Concurrent writers of a data-race-free program touch
            // disjoint words: partition the page among this round's
            // writers.
            const std::uint32_t band = kPageWords / writers;
            for (int w = 0; w < writers; ++w) {
                std::vector<std::byte> copy = twin;
                const std::uint32_t lo_word = w * band;
                const std::uint32_t hi_word =
                    (w == writers - 1) ? kPageWords : lo_word + band;
                const int nwrites = static_cast<int>(rng.range(1, 6));
                for (int i = 0; i < nwrites; ++i) {
                    // Byte-granularity writes, deliberately unaligned.
                    const std::uint32_t lo = lo_word * 4;
                    const std::uint32_t hi = hi_word * 4;
                    const std::uint32_t off = static_cast<std::uint32_t>(
                        lo + rng.below(hi - lo));
                    const std::uint32_t len =
                        std::min<std::uint32_t>(
                            static_cast<std::uint32_t>(1 +
                                                       rng.below(21)),
                            hi - off);
                    for (std::uint32_t b = 0; b < len; ++b) {
                        copy[off + b] =
                            static_cast<std::byte>(rng.below(256));
                    }
                }
                // Single-writer rounds may coalesce runs across gaps
                // (bridged words carry round-start content, which is
                // exactly what in-order application would leave there).
                DiffScan scan;
                scan.gapWords =
                    (writers == 1)
                        ? static_cast<std::uint32_t>(rng.below(5))
                        : 0;
                Diff d = Diff::create(copy.data(), twin.data(),
                                      kPageBytes, nullptr, scan);
                // Later rounds dominate earlier ones: strictly larger
                // sums. Concurrent writers get arbitrary close sums.
                const std::uint64_t vt_sum =
                    static_cast<std::uint64_t>(round + 1) * 100 +
                    rng.below(10);
                history.push_back(
                    {std::move(d), vt_sum, history.size()});
                // Fold this writer's words into the evolving truth.
                for (std::uint32_t word = lo_word; word < hi_word;
                     ++word) {
                    std::copy_n(copy.begin() + word * 4, 4,
                                truth.begin() + word * 4);
                }
            }
        }

        // Homeless replay: happens-before (sum) order, as the
        // faulting node applies a collected diff chain.
        std::vector<std::size_t> order(history.size());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (history[a].vtSum != history[b].vtSum)
                          return history[a].vtSum < history[b].vtSum;
                      return history[a].order < history[b].order;
                  });
        std::vector<std::byte> homeless = base;
        for (std::size_t i : order)
            history[i].diff.apply(homeless.data());
        ASSERT_EQ(homeless, truth) << "trial " << trial;

        // Home replay: adversarially shuffled arrival order through
        // the guarded in-place application.
        for (std::size_t i = history.size(); i > 1; --i) {
            std::swap(history[i - 1],
                      history[rng.below(i)]);
        }
        std::vector<std::byte> home = base;
        std::vector<std::uint64_t> word_sums(kPageWords, 0);
        for (const HistoryDiff &h : history)
            applyDiffGuarded(home.data(), word_sums, h.diff, h.vtSum);
        ASSERT_EQ(home, truth) << "trial " << trial;
    }
}

/** Virtual time monotonicity: more lock hops cannot make the modeled
 *  execution cheaper; a lossy network is never faster than a reliable
 *  one for the same schedule. */
TEST(VirtualTimeProperty, LossSlowsExecution)
{
    auto run = [](std::uint64_t loss) {
        ClusterConfig cc;
        cc.nprocs = 4;
        cc.arenaBytes = 1u << 20;
        cc.pageSize = 1024;
        cc.runtime = RuntimeConfig::parse("LRC-diff");
        cc.lossEveryNth = loss;
        Cluster cluster(cc);
        return cluster.run([](Runtime &rt) {
            auto a = SharedArray<int>::alloc(rt, 256);
            rt.barrier(0);
            for (int round = 0; round < 20; ++round) {
                rt.acquire(1, AccessMode::Write);
                a.set(round, round);
                rt.release(1);
                rt.barrier(1 + round);
            }
        });
    };
    RunResult reliable = run(0);
    RunResult lossy = run(4);
    EXPECT_GT(lossy.total.retransmissions, 0u);
    EXPECT_GT(lossy.execTimeNs, reliable.execTimeNs);
}

} // namespace
} // namespace dsm
