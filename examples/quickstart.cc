/**
 * @file
 * Quickstart: spin up a simulated 4-node DSM cluster, share a counter
 * and a small array, and compare the same program under entry
 * consistency (data bound to the lock) and lazy release consistency
 * (no binding).
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/cluster.hh"
#include "core/shared_array.hh"

using namespace dsm;

int
main()
{
    struct Variant
    {
        const char *label;
        const char *config;
        bool home;
    };
    for (const Variant &v : {Variant{"EC-diff", "EC-diff", false},
                             Variant{"LRC-diff", "LRC-diff", false},
                             Variant{"LRC-diff+home", "LRC-diff", true}}) {
        const char *config = v.label;
        ClusterConfig cc;
        cc.nprocs = 4;
        cc.arenaBytes = 1u << 20;
        cc.runtime = RuntimeConfig::parse(v.config);
        cc.homeBasedLrc = v.home;
        Cluster cluster(cc);

        RunResult result = cluster.run([](Runtime &rt) {
            // Every node performs the same allocations (SPMD).
            auto counters =
                SharedArray<std::int64_t>::alloc(rt, 8, 4, "counters");
            constexpr LockId kLock = 1;
            if (rt.clusterConfig().runtime.model == Model::EC) {
                // EC requires shared data to be bound to a lock.
                rt.bindLock(kLock, {counters.wholeRange()});
            }
            rt.barrier(0);

            // Everyone increments slot 0 a hundred times.
            for (int i = 0; i < 100; ++i) {
                rt.acquire(kLock, AccessMode::Write);
                counters.set(0, counters.get(0) + 1);
                rt.release(kLock);
            }
            rt.barrier(1);

            if (rt.self() == 0) {
                rt.acquire(kLock, AccessMode::Read);
                std::printf("  final counter: %lld (expected %d)\n",
                            static_cast<long long>(counters.get(0)),
                            4 * 100);
                rt.release(kLock);
            }
            rt.barrier(2);
        });

        std::printf("%s: simulated time %.3f ms, %llu messages, "
                    "%.1f KB on the wire\n\n",
                    config, result.execSeconds() * 1e3,
                    static_cast<unsigned long long>(
                        result.total.messagesSent),
                    result.total.bytesSent / 1024.0);
    }
    return 0;
}
