/**
 * @file
 * Model face-off: runs every paper application at a small scale under
 * the best EC and best LRC implementations and prints a Table-3-style
 * comparison — the library's end-to-end demo.
 *
 * Build & run:  ./build/examples/model_faceoff
 */

#include <cstdio>

#include "driver/experiment.hh"
#include "driver/table.hh"

using namespace dsm;

int
main()
{
    AppParams params = AppParams::testScale();
    ClusterConfig cc;
    cc.nprocs = 4;
    cc.arenaBytes = 16u << 20;
    cc.pageSize = 1024;

    std::printf("Paper applications, 4 nodes, test scale "
                "(see bench/ for the full Table 3).\n\n");
    Table table({"Application", "EC best", "LRC best", "winner",
                 "EC impl", "LRC impl", "validated"});
    for (const std::string &app : allAppNames()) {
        ModelSweep ec = sweepModel(Model::EC, app, params, cc);
        ModelSweep lrc = sweepModel(Model::LRC, app, params, cc);
        const double e = ec.best().execSeconds();
        const double l = lrc.best().execSeconds();
        table.addRow({app, fmtSeconds(e), fmtSeconds(l),
                      e < l * 0.97   ? "EC"
                      : l < e * 0.97 ? "LRC"
                                     : "tie",
                      ec.best().config.name(),
                      lrc.best().config.name(),
                      ec.best().verdict.ok && lrc.best().verdict.ok
                          ? "yes"
                          : "NO"});
    }
    table.print();
    return 0;
}
