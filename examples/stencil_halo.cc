/**
 * @file
 * One-dimensional heat diffusion with halo exchange — the SOR sharing
 * pattern in its simplest form, showing how the two models price the
 * same communication: EC moves exactly the boundary cells bound to the
 * halo locks (update protocol); LRC invalidates and fetches the pages
 * they live on, prefetching whatever shares the page.
 *
 * Build & run:  ./build/examples/stencil_halo
 */

#include <cstdio>
#include <vector>

#include "core/cluster.hh"
#include "core/shared_array.hh"

using namespace dsm;

namespace {

constexpr int kCells = 1 << 12;
constexpr int kSteps = 30;

} // namespace

int
main()
{
    for (const char *config :
         {"EC-time", "EC-diff", "LRC-time", "LRC-diff"}) {
        ClusterConfig cc;
        cc.nprocs = 4;
        cc.arenaBytes = 1u << 20;
        cc.runtime = RuntimeConfig::parse(config);
        Cluster cluster(cc);

        RunResult result = cluster.run([](Runtime &rt) {
            const bool ec =
                rt.clusterConfig().runtime.model == Model::EC;
            const int np = rt.nprocs();
            const int self = rt.self();
            const int lo = self * kCells / np;
            const int hi = (self + 1) * kCells / np;

            auto grid = SharedArray<double>::alloc(rt, kCells, 8,
                                                   "grid");
            // One lock per band edge cell (the halo).
            auto edge_lock = [&](int p, bool right) {
                return static_cast<LockId>(2 * p + (right ? 1 : 0));
            };
            if (ec) {
                for (int p = 0; p < np; ++p) {
                    const int plo = p * kCells / np;
                    const int phi = (p + 1) * kCells / np;
                    rt.bindLock(edge_lock(p, false),
                                {grid.range(plo, 1)});
                    rt.bindLock(edge_lock(p, true),
                                {grid.range(phi - 1, 1)});
                }
            }

            // Identical initial condition everywhere: a hot spot.
            {
                std::vector<double> init(kCells, 0.0);
                init[kCells / 2] = 1000.0;
                rt.initBuf(grid.base(), init.data(), kCells);
            }
            BarrierId barrier = 0;
            rt.barrier(barrier++);

            std::vector<double> band(hi - lo + 2);
            for (int step = 0; step < kSteps; ++step) {
                // Read the halo (EC: read-only locks on neighbours'
                // edge cells).
                double left = 0, right = 0;
                if (self > 0) {
                    if (ec)
                        rt.acquire(edge_lock(self - 1, true),
                                   AccessMode::Read);
                    left = grid.get(lo - 1);
                    if (ec)
                        rt.release(edge_lock(self - 1, true));
                }
                if (self < np - 1) {
                    if (ec)
                        rt.acquire(edge_lock(self + 1, false),
                                   AccessMode::Read);
                    right = grid.get(hi);
                    if (ec)
                        rt.release(edge_lock(self + 1, false));
                }

                grid.load(lo, band.data() + 1, hi - lo);
                band[0] = left;
                band[hi - lo + 1] = right;
                std::vector<double> next(hi - lo);
                for (int i = 0; i < hi - lo; ++i) {
                    next[i] = band[i + 1] +
                              0.25 * (band[i] - 2 * band[i + 1] +
                                      band[i + 2]);
                }
                rt.chargeWork(hi - lo);

                if (ec) {
                    rt.acquire(edge_lock(self, false),
                               AccessMode::Write);
                    rt.acquire(edge_lock(self, true),
                               AccessMode::Write);
                }
                grid.store(lo, next.data(), hi - lo);
                if (ec) {
                    rt.release(edge_lock(self, true));
                    rt.release(edge_lock(self, false));
                }
                rt.barrier(barrier++);
            }

            if (self == 0) {
                // Collect and report total heat (conservation check).
                double total = 0;
                for (int p = 0; p < np; ++p) {
                    if (ec) {
                        rt.acquire(edge_lock(p, false),
                                   AccessMode::Read);
                        rt.release(edge_lock(p, false));
                        rt.acquire(edge_lock(p, true),
                                   AccessMode::Read);
                        rt.release(edge_lock(p, true));
                    }
                }
                // Interior cells are only exact on their owners; the
                // conservation check here is indicative (node 0 band).
                for (int i = 0; i < kCells / np; ++i)
                    total += grid.get(i);
                std::printf("  node0 band heat: %.3f\n", total);
            }
            rt.barrier(barrier++);
        });

        std::printf("%-9s simulated %.3f ms, %5llu msgs, %7.1f KB\n",
                    config, result.execSeconds() * 1e3,
                    static_cast<unsigned long long>(
                        result.total.messagesSent),
                    result.total.bytesSent / 1024.0);
    }
    return 0;
}
