/**
 * @file
 * A distributed work queue on DSM — the Quicksort sharing pattern of
 * the paper in miniature. Workers pull (value, repeat) jobs from a
 * shared queue and accumulate results into a shared table.
 *
 * Under EC the queue record is bound to the queue lock, and each job's
 * payload region is bound to a per-entry lock that is *rebound* as
 * entries are reused for new jobs — demonstrating acquireForRebind and
 * rebindLock. Under LRC the queue lock alone does everything.
 *
 * Build & run:  ./build/examples/task_queue
 */

#include <cstdio>

#include "core/cluster.hh"
#include "core/shared_array.hh"

using namespace dsm;

namespace {

constexpr int kJobs = 48;
constexpr int kPayloadWords = 64;
constexpr LockId kQueueLock = 0;

LockId
entryLock(int i)
{
    return 1 + i;
}

} // namespace

int
main()
{
    for (const char *config : {"EC-diff", "LRC-diff"}) {
        ClusterConfig cc;
        cc.nprocs = 4;
        cc.arenaBytes = 2u << 20;
        cc.runtime = RuntimeConfig::parse(config);
        Cluster cluster(cc);

        RunResult result = cluster.run([](Runtime &rt) {
            const bool ec =
                rt.clusterConfig().runtime.model == Model::EC;
            // queue: [next job, results...] ; payload pool per job
            auto queue = SharedArray<std::int64_t>::alloc(
                rt, 1 + kJobs, 4, "queue");
            auto payload = SharedArray<std::int64_t>::alloc(
                rt, kJobs * kPayloadWords, 4, "payload");
            if (ec) {
                rt.bindLock(kQueueLock, {queue.wholeRange()});
                for (int j = 0; j < kJobs; ++j)
                    rt.bindLock(entryLock(j), {});
            }
            rt.barrier(0);

            // Node 0 publishes every job's payload.
            if (rt.self() == 0) {
                for (int j = 0; j < kJobs; ++j) {
                    if (ec) {
                        rt.acquireForRebind(entryLock(j));
                        rt.rebindLock(
                            entryLock(j),
                            {payload.range(j * kPayloadWords,
                                           kPayloadWords)});
                    }
                    std::vector<std::int64_t> words(kPayloadWords);
                    for (int w = 0; w < kPayloadWords; ++w)
                        words[w] = j * 1000 + w;
                    payload.store(j * kPayloadWords, words.data(),
                                  kPayloadWords);
                    if (ec)
                        rt.release(entryLock(j));
                }
            }
            rt.barrier(1);

            // Workers pull jobs and post the payload sum as a result.
            for (;;) {
                rt.acquire(kQueueLock, AccessMode::Write);
                const std::int64_t job = queue.get(0);
                if (job < kJobs)
                    queue.set(0, job + 1);
                rt.release(kQueueLock);
                if (job >= kJobs)
                    break;

                if (ec)
                    rt.acquire(entryLock(static_cast<int>(job)),
                               AccessMode::Write);
                std::int64_t sum = 0;
                for (int w = 0; w < kPayloadWords; ++w)
                    sum += payload.get(job * kPayloadWords + w);
                if (ec)
                    rt.release(entryLock(static_cast<int>(job)));
                rt.chargeWork(kPayloadWords);

                rt.acquire(kQueueLock, AccessMode::Write);
                queue.set(1 + job, sum);
                rt.release(kQueueLock);
            }
            rt.barrier(2);

            if (rt.self() == 0) {
                rt.acquire(kQueueLock, AccessMode::Read);
                int correct = 0;
                for (int j = 0; j < kJobs; ++j) {
                    std::int64_t expect = 0;
                    for (int w = 0; w < kPayloadWords; ++w)
                        expect += j * 1000 + w;
                    if (queue.get(1 + j) == expect)
                        ++correct;
                }
                rt.release(kQueueLock);
                std::printf("  %d/%d job results correct\n", correct,
                            kJobs);
            }
            rt.barrier(3);
        });

        std::printf("%s: simulated time %.3f ms, %llu messages\n\n",
                    config, result.execSeconds() * 1e3,
                    static_cast<unsigned long long>(
                        result.total.messagesSent));
    }
    return 0;
}
